(** Local (single-rank) ghost handling for the six box faces.

    [Domain] faces are skipped here — they belong to the parallel
    exchanger, which calls back into these primitives for every
    non-domain face. *)

module Sf = Vpic_grid.Scalar_field
module Bc = Vpic_grid.Bc
module Axis = Vpic_grid.Axis

(** Fill both ghost planes of one scalar along [axis] for a non-domain
    face kind: periodic wraps, conducting zeroes, absorbing copies the
    adjacent interior plane (zero-gradient). *)
val fill_face : Bc.kind -> Sf.t -> axis:Axis.t -> side:[ `Lo | `Hi ] -> unit

(** Fold a ghost plane of an accumulated quantity (current, rho) back into
    the interior: periodic wraps and adds; other kinds discard. *)
val fold_face : Bc.kind -> Sf.t -> axis:Axis.t -> side:[ `Lo | `Hi ] -> unit

(** Fill ghosts of the given scalars on every non-domain face. *)
val fill_scalars : Bc.t -> Sf.t list -> unit

(** Fill ghosts of all six EM components on every non-domain face. *)
val fill_em : Bc.t -> Em_field.t -> unit

(** Fold ghost currents (jx,jy,jz) on every non-domain face. *)
val fold_currents : Bc.t -> Em_field.t -> unit

(** Fold ghost rho on every non-domain face. *)
val fold_rho : Bc.t -> Em_field.t -> unit

(** Zero wall-tangential E on conducting faces (call after advance_e). *)
val enforce_pec : Bc.t -> Em_field.t -> unit

(** {1 Sponge absorber}

    Fields within [thickness] cells of an absorbing face are multiplied
    each step by a mask ramping from 1 down to [1 - strength] at the wall,
    absorbing outgoing waves with little reflection. *)

module Absorber : sig
  type t

  val create :
    Vpic_grid.Grid.t -> Bc.t -> thickness:int -> strength:float -> t

  (** Identity mask when no face is absorbing. *)
  val is_trivial : t -> bool

  val apply : t -> Em_field.t -> unit
end
