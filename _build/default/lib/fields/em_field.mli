(** Electromagnetic field state on a Yee mesh.

    Component staggering (array slot [i,j,k] holds the value at):
    - ex: (i+1/2, j, k)      ey: (i, j+1/2, k)      ez: (i, j, k+1/2)
    - bx: (i, j+1/2, k+1/2)  by: (i+1/2, j, k+1/2)  bz: (i+1/2, j+1/2, k)
    - jx/jy/jz are co-located with ex/ey/ez.
    - rho and derived scalars (div error) live on integer nodes (i, j, k).

    Units: c = 1, eps0 = mu0 = 1 (so B here is really c*B). *)

type t = {
  grid : Vpic_grid.Grid.t;
  ex : Vpic_grid.Scalar_field.t;
  ey : Vpic_grid.Scalar_field.t;
  ez : Vpic_grid.Scalar_field.t;
  bx : Vpic_grid.Scalar_field.t;
  by : Vpic_grid.Scalar_field.t;
  bz : Vpic_grid.Scalar_field.t;
  jx : Vpic_grid.Scalar_field.t;
  jy : Vpic_grid.Scalar_field.t;
  jz : Vpic_grid.Scalar_field.t;
  rho : Vpic_grid.Scalar_field.t;
}

val create : Vpic_grid.Grid.t -> t

(** Zero the current accumulators (start of every step). *)
val clear_currents : t -> unit

val clear_rho : t -> unit

(** All six EM components, for bulk ghost operations. *)
val em_components : t -> Vpic_grid.Scalar_field.t list

val e_components : t -> Vpic_grid.Scalar_field.t list
val b_components : t -> Vpic_grid.Scalar_field.t list
val j_components : t -> Vpic_grid.Scalar_field.t list

(** Named components, for serialisation and debug dumps. *)
val named_components : t -> (string * Vpic_grid.Scalar_field.t) list

(** Deep copy (grids shared, data duplicated). *)
val copy : t -> t

(** Max |a - b| over interior voxels across all EM components. *)
val max_component_diff : t -> t -> float
