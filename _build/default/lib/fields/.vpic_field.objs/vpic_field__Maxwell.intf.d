lib/fields/maxwell.mli: Em_field Vpic_grid Vpic_util
