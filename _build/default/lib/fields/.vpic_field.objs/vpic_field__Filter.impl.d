lib/fields/filter.ml: Bigarray Em_field List Vpic_grid
