lib/fields/marder.mli: Em_field Vpic_grid Vpic_util
