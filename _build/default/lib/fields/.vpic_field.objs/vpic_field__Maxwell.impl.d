lib/fields/maxwell.ml: Bigarray Em_field Float Vpic_grid Vpic_util
