lib/fields/filter.mli: Em_field Vpic_grid
