lib/fields/em_field.mli: Vpic_grid
