lib/fields/boundary.mli: Em_field Vpic_grid
