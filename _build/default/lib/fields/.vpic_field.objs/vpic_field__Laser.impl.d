lib/fields/laser.ml: Em_field Float Vpic_grid
