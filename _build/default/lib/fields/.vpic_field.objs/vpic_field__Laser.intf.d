lib/fields/laser.mli: Em_field
