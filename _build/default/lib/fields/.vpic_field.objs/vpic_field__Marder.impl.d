lib/fields/marder.ml: Boundary Em_field Vpic_grid Vpic_util
