lib/fields/boundary.ml: Array Bigarray Em_field Float List Vpic_grid
