lib/fields/diagnostics.ml: Em_field Float List String Vpic_grid
