lib/fields/diagnostics.mli: Em_field Vpic_grid
