lib/fields/em_field.ml: Float List Vpic_grid
