let c_si = 2.99792458e8
let e_si = 1.602176634e-19
let m_e_si = 9.1093837015e-31
let eps0_si = 8.8541878128e-12
let k_b_si = 1.380649e-23
let ev_to_joule = e_si

let plasma_frequency n_e = sqrt (n_e *. e_si *. e_si /. (eps0_si *. m_e_si))

let critical_density ~lambda =
  let omega0 = 2. *. Float.pi *. c_si /. lambda in
  eps0_si *. m_e_si *. omega0 *. omega0 /. (e_si *. e_si)

let thermal_speed ~t_ev = sqrt (t_ev *. ev_to_joule /. m_e_si)
let debye_length ~n_e ~t_ev = thermal_speed ~t_ev /. plasma_frequency n_e

let a0_of_intensity ~intensity_w_cm2 ~lambda =
  (* a0 = 0.8549 * lambda[um] * sqrt(I[10^18 W/cm^2]) (linear polarisation) *)
  let lambda_um = lambda *. 1e6 in
  let i18 = intensity_w_cm2 /. 1e18 in
  0.8549 *. lambda_um *. sqrt i18

let intensity_of_a0 ~a0 ~lambda =
  let lambda_um = lambda *. 1e6 in
  let r = a0 /. (0.8549 *. lambda_um) in
  r *. r *. 1e18

type norm = { n_ref : float; omega_pe : float; skin_depth : float }

let make_norm ~n_ref =
  let omega_pe = plasma_frequency n_ref in
  { n_ref; omega_pe; skin_depth = c_si /. omega_pe }

let uth_of_temperature ~t_ev = thermal_speed ~t_ev /. c_si

let laser_omega norm ~lambda =
  let n_cr = critical_density ~lambda in
  sqrt (n_cr /. norm.n_ref)
