type t = { x : float; y : float; z : float }

let zero = { x = 0.; y = 0.; z = 0. }
let make x y z = { x; y; z }
let add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }
let scale s a = { x = s *. a.x; y = s *. a.y; z = s *. a.z }
let neg a = scale (-1.) a
let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)

let cross a b =
  { x = (a.y *. b.z) -. (a.z *. b.y);
    y = (a.z *. b.x) -. (a.x *. b.z);
    z = (a.x *. b.y) -. (a.y *. b.x) }

let norm2 a = dot a a
let norm a = sqrt (norm2 a)
let axpy a x y = add (scale a x) y
let hadamard a b = { x = a.x *. b.x; y = a.y *. b.y; z = a.z *. b.z }
let lerp t a b = add (scale (1. -. t) a) (scale t b)

let equal ?(eps = 0.) a b =
  let close u v = Float.abs (u -. v) <= eps in
  close a.x b.x && close a.y b.y && close a.z b.z

let pp ppf a = Format.fprintf ppf "(%g, %g, %g)" a.x a.y a.z
let to_string a = Format.asprintf "%a" pp a
