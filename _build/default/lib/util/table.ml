type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row =
  assert (List.length row = List.length t.headers);
  t.rows <- row :: t.rows

let cell_f x = Printf.sprintf "%.4g" x
let cell_i = string_of_int

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let line row = String.concat "  " (List.map2 pad widths row) in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (line r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ~title t =
  Printf.printf "\n== %s ==\n%s%!" title (render t)

let to_csv t =
  let buf = Buffer.create 256 in
  let emit row = Buffer.add_string buf (String.concat "," row ^ "\n") in
  emit t.headers;
  List.iter emit (List.rev t.rows);
  Buffer.contents buf

let save_csv t path =
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc
