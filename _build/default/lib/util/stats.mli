(** Running statistics (Welford) and small fitting helpers used by
    diagnostics and benchmarks. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

(** Sample variance (n-1 denominator); 0 for fewer than two samples. *)
val variance : t -> float

val stddev : t -> float
val min : t -> float
val max : t -> float
val total : t -> float

(** Merge two accumulators (parallel Welford combination). *)
val merge : t -> t -> t

(** {1 Array helpers} *)

val mean_of : float array -> float
val stddev_of : float array -> float

(** [percentile p xs] for p in [0,100]; linear interpolation; sorts a copy. *)
val percentile : float -> float array -> float

(** Least-squares fit y = a + b x; returns (a, b, r2). *)
val linear_fit : float array -> float array -> float * float * float

(** Fit log y = a + b x (exponential growth rate b); ignores y <= 0 points.
    Returns (log_a, b, r2). *)
val log_linear_fit : float array -> float array -> float * float * float
