let close ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let rel_err ?(floor = 1e-300) a b =
  Float.abs (a -. b) /. Float.max (Float.abs b) floor

exception Check_failed of string

let check_close ?rtol ?atol label a b =
  if not (close ?rtol ?atol a b) then
    raise
      (Check_failed (Printf.sprintf "%s: %.17g not close to %.17g" label a b))
