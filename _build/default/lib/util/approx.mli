(** Floating-point comparison helpers for tests and diagnostics. *)

(** [close ~rtol ~atol a b] is true when |a-b| <= atol + rtol*max(|a|,|b|).
    Defaults: rtol = 1e-9, atol = 1e-12. *)
val close : ?rtol:float -> ?atol:float -> float -> float -> bool

(** Relative error |a-b| / max(|b|, floor); [floor] defaults to 1e-300. *)
val rel_err : ?floor:float -> float -> float -> float

(** Alcotest-style testable built on [close]. *)
val check_close :
  ?rtol:float -> ?atol:float -> string -> float -> float -> unit

exception Check_failed of string
