lib/util/table.mli:
