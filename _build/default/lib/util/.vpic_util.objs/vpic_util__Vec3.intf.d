lib/util/vec3.mli: Format
