lib/util/rng.mli:
