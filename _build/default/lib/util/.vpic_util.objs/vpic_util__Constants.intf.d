lib/util/constants.mli:
