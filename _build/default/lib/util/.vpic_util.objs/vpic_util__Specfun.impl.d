lib/util/specfun.ml: Array Complex Float Stdlib
