lib/util/approx.mli:
