lib/util/perf.mli:
