lib/util/approx.ml: Float Printf
