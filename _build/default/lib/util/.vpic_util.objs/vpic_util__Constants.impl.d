lib/util/constants.ml: Float
