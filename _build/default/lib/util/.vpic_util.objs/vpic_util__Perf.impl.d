lib/util/perf.ml: Unix
