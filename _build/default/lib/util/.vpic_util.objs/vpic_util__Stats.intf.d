lib/util/stats.mli:
