lib/util/specfun.mli: Complex
