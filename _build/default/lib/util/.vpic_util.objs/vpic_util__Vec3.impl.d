lib/util/vec3.ml: Float Format
