(* erf via the incomplete-gamma style series / continued fraction used by
   Numerical Recipes' erfcc has only ~1e-7 accuracy; we use the series for
   small |x| and the asymptotic continued fraction for large |x|, giving
   close to double precision. *)

let erf_series x =
  (* erf(x) = 2/sqrt(pi) sum_{n>=0} (-1)^n x^(2n+1) / (n! (2n+1)) *)
  let rec loop n term sum =
    if Float.abs term < 1e-17 *. Float.abs sum || n > 200 then sum
    else begin
      let n' = n + 1 in
      let term' = -.term *. x *. x /. float_of_int n' in
      loop n' term' (sum +. (term' /. float_of_int ((2 * n') + 1)))
    end
  in
  2. /. sqrt Float.pi *. loop 0 x x

let erfc_cf x =
  (* erfc(x) = exp(-x^2)/(x sqrt(pi)) * 1/(1 + 1/(2x^2 + 2/(1 + 3/(2x^2 + ...))))
     evaluated with the Lentz algorithm on the standard continued fraction. *)
  let tiny = 1e-30 in
  let b0 = x *. x +. 0.5 in
  let f = ref b0 and c = ref b0 and d = ref 0. in
  for n = 1 to 100 do
    let a = -.float_of_int n *. (float_of_int n -. 0.5) in
    let b = x *. x +. (2. *. float_of_int n) +. 0.5 in
    d := b +. (a *. !d);
    if Float.abs !d < tiny then d := tiny;
    c := b +. (a /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1. /. !d;
    f := !f *. !c *. !d
  done;
  x /. sqrt Float.pi *. exp (-.(x *. x)) /. !f

let erf x =
  if x < 0. then -.(if -.x < 2. then erf_series (-.x) else 1. -. erfc_cf (-.x))
  else if x < 2. then erf_series x
  else 1. -. erfc_cf x

let erfc x = 1. -. erf x

(* Dawson integral via Rybicki's exponentially accurate sampling method
   (Numerical Recipes dawson). *)
let dawson_h = 0.4
let dawson_nmax = 6

let dawson_c =
  Array.init dawson_nmax (fun i ->
      let v = ((2. *. float_of_int i) +. 1.) *. dawson_h in
      exp (-.(v *. v)))

let dawson x =
  let ax = Float.abs x in
  if ax < 0.2 then begin
    (* Series: F(x) = x - 2x^3/3 + 4x^5/15 - ... *)
    let x2 = x *. x in
    x *. (1. -. (2. /. 3. *. x2) +. (4. /. 15. *. x2 *. x2) -. (8. /. 105. *. x2 *. x2 *. x2))
  end
  else begin
    let n0 = 2 * int_of_float (Float.round (0.5 *. ax /. dawson_h)) in
    let xp = ax -. (float_of_int n0 *. dawson_h) in
    let e1 = exp (2. *. xp *. dawson_h) in
    let e2 = e1 *. e1 in
    let d1 = ref (float_of_int n0 +. 1.) in
    let d2 = ref (!d1 -. 2.) in
    let sum = ref 0. in
    let e1 = ref e1 in
    for i = 0 to dawson_nmax - 1 do
      sum := !sum +. (dawson_c.(i) *. ((!e1 /. !d1) +. (1. /. (!d2 *. !e1))));
      d1 := !d1 +. 2.;
      d2 := !d2 -. 2.;
      e1 := !e1 *. e2
    done;
    let r = 0.5641895835477563 *. exp (-.(xp *. xp)) *. !sum in
    if x >= 0. then r else -.r
  end

let plasma_z x = (-2. *. dawson x, sqrt Float.pi *. exp (-.(x *. x)))

let plasma_z_prime x =
  let zr, zi = plasma_z x in
  (-2. *. (1. +. (x *. zr)), -2. *. x *. zi)

let bohm_gross_omega ~k_lambda_d =
  let k2 = k_lambda_d *. k_lambda_d in
  sqrt (1. +. (3. *. k2))

(* Faddeeva function, Humlicek w4 (JQSRT 27, 437 (1982)): rational
   approximations selected by |x|+y regions, valid for Im z >= 0; the
   lower half plane uses w(z) = 2 exp(-z^2) - w(-z). *)
let rec faddeeva (z : Complex.t) : Complex.t =
  let open Complex in
  if z.im < 0. then sub (mul { re = 2.; im = 0. } (exp (neg (mul z z)))) (faddeeva (neg z))
  else begin
    let x = z.re and y = z.im in
    let t = { re = y; im = -.x } in
    let s = Float.abs x +. y in
    if s >= 15. then
      (* region I *)
      div (mul t { re = 0.5641896; im = 0. }) (add { re = 0.5; im = 0. } (mul t t))
    else if s >= 5.5 then begin
      (* region II *)
      let u = mul t t in
      div
        (mul t (add { re = 1.410474; im = 0. } (mul u { re = 0.5641896; im = 0. })))
        (add { re = 0.75; im = 0. } (mul u (add { re = 3.; im = 0. } u)))
    end
    else if y >= (0.195 *. Float.abs x) -. 0.176 then begin
      (* region III *)
      let c r = { re = r; im = 0. } in
      let num =
        add (c 16.4955)
          (mul t
             (add (c 20.20933)
                (mul t (add (c 11.96482) (mul t (add (c 3.778987) (mul t (c 0.5642236))))))))
      in
      let den =
        add (c 16.4955)
          (mul t
             (add (c 38.82363)
                (mul t
                   (add (c 39.27121)
                      (mul t (add (c 21.69274) (mul t (add (c 6.699398) t))))))))
      in
      div num den
    end
    else begin
      (* region IV *)
      let c r = { re = r; im = 0. } in
      let u = mul t t in
      let num =
        mul t
          (sub (c 36183.31)
             (mul u
                (sub (c 3321.9905)
                   (mul u
                      (sub (c 1540.787)
                         (mul u
                            (sub (c 219.0313)
                               (mul u
                                  (sub (c 35.76683)
                                     (mul u (sub (c 1.320522) (mul u (c 0.56419)))))))))))))
      in
      let den =
        sub (c 32066.6)
          (mul u
             (sub (c 24322.84)
                (mul u
                   (sub (c 9022.228)
                      (mul u
                         (sub (c 2186.181)
                            (mul u
                               (sub (c 364.2191)
                                  (mul u (sub (c 61.57037) (mul u (sub (c 1.841439) u))))))))))))
      in
      sub (exp u) (div num den)
    end
  end

let plasma_z_complex zeta =
  Complex.mul { Complex.re = 0.; im = Stdlib.sqrt Float.pi } (faddeeva zeta)

(* Full kinetic dispersion for Langmuir waves in a Maxwellian plasma:
   eps(zeta) = 1 + (1 + zeta Z(zeta)) / (k ld)^2 = 0 with
   zeta = (omega - i gamma) / (sqrt2 k ld), solved by complex Newton
   (eps' uses Z' = -2 (1 + zeta Z)). *)
let landau_root ~k_lambda_d =
  let kld = k_lambda_d in
  assert (kld > 0.);
  let open Complex in
  let k2 = { re = kld *. kld; im = 0. } in
  let one = { re = 1.; im = 0. } in
  let eps zeta = add one (div (add one (mul zeta (plasma_z_complex zeta))) k2) in
  let deps zeta =
    (* d/dzeta [(1 + zeta Z)/k2] = (Z + zeta Z')/k2, Z' = -2(1 + zeta Z) *)
    let zz = plasma_z_complex zeta in
    let zprime = mul { re = -2.; im = 0. } (add one (mul zeta zz)) in
    div (add zz (mul zeta zprime)) k2
  in
  (* Start from the Bohm-Gross real frequency with a small damping. *)
  let w0 = bohm_gross_omega ~k_lambda_d:kld in
  let scale = Stdlib.sqrt 2. *. kld in
  let zeta = ref { re = w0 /. scale; im = -0.01 } in
  for _ = 1 to 60 do
    let f = eps !zeta in
    let f' = deps !zeta in
    if norm f' > 0. then zeta := sub !zeta (div f f')
  done;
  let omega = !zeta.re *. scale in
  let gamma = -. !zeta.im *. scale in
  (omega, gamma)

let landau_damping_exact ~k_lambda_d =
  let _, gamma = landau_root ~k_lambda_d in
  gamma

let landau_damping_rate ~k_lambda_d =
  (* gamma/omega_pe = sqrt(pi/8) / (k ld)^3 * exp(-1/(2 (k ld)^2) - 3/2),
     the standard weak-damping result including the Bohm–Gross shift. *)
  let k = k_lambda_d in
  if k <= 0. then 0.
  else
    sqrt (Float.pi /. 8.) /. (k *. k *. k)
    *. exp ((-1. /. (2. *. k *. k)) -. 1.5)
