(** Aligned text tables and CSV emission for the benchmark harness. *)

type t

(** [create headers] starts a table with the given column headers. *)
val create : string list -> t

(** Append a row (stringified cells); arity must match the header. *)
val add_row : t -> string list -> unit

(** Convenience: format floats with [%.4g] and ints directly. *)
val cell_f : float -> string

val cell_i : int -> string

(** Render with aligned columns, a rule under the header. *)
val render : t -> string

(** Print to stdout with a title line. *)
val print : title:string -> t -> unit

(** CSV text (no quoting needed for our numeric tables). *)
val to_csv : t -> string

val save_csv : t -> string -> unit
