(** Special functions needed by kinetic plasma theory: error function,
    Dawson integral and the (real-argument) plasma dispersion function. *)

(** Error function, |error| < 1.2e-7 (Abramowitz–Stegun 7.1.26 refined by
    series/continued-fraction switching). *)
val erf : float -> float

val erfc : float -> float

(** Dawson integral F(x) = exp(-x^2) int_0^x exp(t^2) dt. *)
val dawson : float -> float

(** Plasma dispersion function Z(zeta) for real zeta:
    Z(x) = -2 F(x) + i sqrt(pi) exp(-x^2).  Returns (re, im). *)
val plasma_z : float -> float * float

(** Derivative Z'(x) = -2 (1 + x Z(x)); returns (re, im). *)
val plasma_z_prime : float -> float * float

(** Electron-plasma-wave Landau damping rate (gamma/omega_pe, positive =
    damping) for wavenumber [k_lambda_d] = k lambda_De, from the textbook
    weak-damping asymptotic formula (overestimates beyond
    k lambda_D ~ 0.25; see {!landau_damping_exact}). *)
val landau_damping_rate : k_lambda_d:float -> float

(** Faddeeva function w(z) = exp(-z^2) erfc(-iz) for complex argument
    (Humlicek's w4 rational approximation, ~1e-4 relative accuracy,
    extended to the lower half plane via w(z) = 2 exp(-z^2) - w(-z)). *)
val faddeeva : Complex.t -> Complex.t

(** Z(zeta) = i sqrt(pi) w(zeta), the plasma dispersion function for
    complex argument (analytic continuation included). *)
val plasma_z_complex : Complex.t -> Complex.t

(** Landau damping from the full kinetic dispersion relation for a
    Maxwellian: complex Newton iteration on
    eps(zeta) = 1 + (1 + zeta Z(zeta))/(k lambda_D)^2 = 0.
    Returns (omega/omega_pe, gamma/omega_pe), gamma > 0 for damping;
    e.g. (1.1598, 0.0126) at k lambda_D = 0.3 and (1.4156, 0.153) at 0.5. *)
val landau_root : k_lambda_d:float -> float * float

val landau_damping_exact : k_lambda_d:float -> float

(** Bohm–Gross real frequency omega/omega_pe for k lambda_De. *)
val bohm_gross_omega : k_lambda_d:float -> float
