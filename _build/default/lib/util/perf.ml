type counters = {
  mutable flops : float;
  mutable bytes_moved : float;
  mutable particle_steps : float;
  mutable voxel_updates : float;
}

let create () =
  { flops = 0.; bytes_moved = 0.; particle_steps = 0.; voxel_updates = 0. }

let reset c =
  c.flops <- 0.;
  c.bytes_moved <- 0.;
  c.particle_steps <- 0.;
  c.voxel_updates <- 0.

let merge_into ~dst c =
  dst.flops <- dst.flops +. c.flops;
  dst.bytes_moved <- dst.bytes_moved +. c.bytes_moved;
  dst.particle_steps <- dst.particle_steps +. c.particle_steps;
  dst.voxel_updates <- dst.voxel_updates +. c.voxel_updates

let add_flops c n = c.flops <- c.flops +. n
let add_bytes c n = c.bytes_moved <- c.bytes_moved +. n
let add_particle_steps c n = c.particle_steps <- c.particle_steps +. n
let add_voxel_updates c n = c.voxel_updates <- c.voxel_updates +. n
let global = create ()

type timer = {
  mutable t0 : float;
  mutable running : bool;
  mutable total : float;
  mutable count : int;
}

let now () = Unix.gettimeofday ()
let timer_create () = { t0 = 0.; running = false; total = 0.; count = 0 }

let timer_start t =
  t.t0 <- now ();
  t.running <- true

let timer_stop t =
  assert t.running;
  let dt = now () -. t.t0 in
  t.running <- false;
  t.total <- t.total +. dt;
  t.count <- t.count + 1;
  dt

let timer_total t = t.total
let timer_count t = t.count

let timed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)
