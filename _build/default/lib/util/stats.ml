type t = {
  mutable n : int;
  mutable mu : float;
  mutable m2 : float;
  mutable mn : float;
  mutable mx : float;
  mutable sum : float;
}

let create () =
  { n = 0; mu = 0.; m2 = 0.; mn = infinity; mx = neg_infinity; sum = 0. }

let add t x =
  t.n <- t.n + 1;
  let d = x -. t.mu in
  t.mu <- t.mu +. (d /. float_of_int t.n);
  t.m2 <- t.m2 +. (d *. (x -. t.mu));
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  t.sum <- t.sum +. x

let count t = t.n
let mean t = t.mu
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.mn
let max t = t.mx
let total t = t.sum

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let d = b.mu -. a.mu in
    let mu = a.mu +. (d *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2 +. (d *. d *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    { n;
      mu;
      m2;
      mn = Float.min a.mn b.mn;
      mx = Float.max a.mx b.mx;
      sum = a.sum +. b.sum }
  end

let mean_of xs =
  let t = create () in
  Array.iter (add t) xs;
  mean t

let stddev_of xs =
  let t = create () in
  Array.iter (add t) xs;
  stddev t

let percentile p xs =
  assert (Array.length xs > 0 && p >= 0. && p <= 100.);
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  let n = Array.length ys in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  ((1. -. frac) *. ys.(lo)) +. (frac *. ys.(hi))

let linear_fit xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys && n >= 2);
  let fn = float_of_int n in
  let sx = Array.fold_left ( +. ) 0. xs and sy = Array.fold_left ( +. ) 0. ys in
  let mx = sx /. fn and my = sy /. fn in
  let sxx = ref 0. and sxy = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  let b = if !sxx = 0. then 0. else !sxy /. !sxx in
  let a = my -. (b *. mx) in
  let r2 =
    if !sxx = 0. || !syy = 0. then 1. else !sxy *. !sxy /. (!sxx *. !syy)
  in
  (a, b, r2)

let log_linear_fit xs ys =
  let pairs =
    Array.to_list (Array.mapi (fun i x -> (x, ys.(i))) xs)
    |> List.filter (fun (_, y) -> y > 0.)
  in
  let xs' = Array.of_list (List.map fst pairs) in
  let ys' = Array.of_list (List.map (fun (_, y) -> log y) pairs) in
  linear_fit xs' ys'
