(** Physical constants (SI) and the normalised unit system used throughout.

    The simulation works in VPIC-style normalised units: c = 1,
    eps0 = mu0 = 1, lengths in c/omega_pe of a reference electron density,
    times in 1/omega_pe, momenta u = gamma v in units of c, and fields in
    m_e c omega_pe / e.  This module converts between SI laser/plasma
    parameters and those units. *)

(** {1 SI constants} *)

val c_si : float (** speed of light, m/s *)

val e_si : float (** elementary charge, C *)

val m_e_si : float (** electron mass, kg *)

val eps0_si : float (** vacuum permittivity, F/m *)

val k_b_si : float (** Boltzmann constant, J/K *)

val ev_to_joule : float

(** {1 Derived plasma quantities (SI in, SI out)} *)

(** [plasma_frequency n_e] for electron density n_e in m^-3, rad/s. *)
val plasma_frequency : float -> float

(** Critical density (m^-3) for laser wavelength [lambda] in metres. *)
val critical_density : lambda:float -> float

(** Electron thermal speed sqrt(T/m) in m/s for temperature in eV. *)
val thermal_speed : t_ev:float -> float

(** Debye length in metres. *)
val debye_length : n_e:float -> t_ev:float -> float

(** Normalised laser amplitude a0 = e E / (m_e c omega_0) from intensity
    (W/cm^2) and wavelength (m). *)
val a0_of_intensity : intensity_w_cm2:float -> lambda:float -> float

(** Inverse of {!a0_of_intensity}. *)
val intensity_of_a0 : a0:float -> lambda:float -> float

(** {1 Normalisation relative to a reference density} *)

type norm = {
  n_ref : float;      (** reference electron density, m^-3 *)
  omega_pe : float;   (** reference plasma frequency, rad/s *)
  skin_depth : float; (** c/omega_pe, metres *)
}

val make_norm : n_ref:float -> norm

(** Thermal momentum spread u_th = v_th/c (non-relativistic T) for T in eV. *)
val uth_of_temperature : t_ev:float -> float

(** Laser frequency in units of the reference omega_pe:
    omega0/omega_pe = sqrt(n_cr / n_ref). *)
val laser_omega : norm -> lambda:float -> float
