(** Small 3-vector of floats, used for momenta, fields and geometry. *)

type t = { x : float; y : float; z : float }

val zero : t
val make : float -> float -> float -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t
val dot : t -> t -> float
val cross : t -> t -> t
val norm2 : t -> float

(** Euclidean length. *)
val norm : t -> float

(** [axpy a x y] is [a*x + y]. *)
val axpy : float -> t -> t -> t

(** Componentwise multiplication. *)
val hadamard : t -> t -> t

(** [lerp t a b] linearly interpolates between [a] (t=0) and [b] (t=1). *)
val lerp : float -> t -> t -> t

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
