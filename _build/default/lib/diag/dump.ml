module Grid = Vpic_grid.Grid
module Sf = Vpic_grid.Scalar_field
module Species = Vpic_particle.Species
module Particle = Vpic_particle.Particle

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let line_x_csv ~path ~j ~k named =
  match named with
  | [] -> invalid_arg "Dump.line_x_csv: no fields"
  | (_, first) :: _ ->
      let g = Sf.grid first in
      assert (j >= 1 && j <= g.Grid.ny && k >= 1 && k <= g.Grid.nz);
      with_out path (fun oc ->
          output_string oc
            ("x," ^ String.concat "," (List.map fst named) ^ "\n");
          for i = 1 to g.Grid.nx do
            let x = g.Grid.x0 +. ((float_of_int (i - 1) +. 0.5) *. g.Grid.dx) in
            output_string oc (Printf.sprintf "%.9g" x);
            List.iter
              (fun (_, f) ->
                output_string oc (Printf.sprintf ",%.9g" (Sf.get f i j k)))
              named;
            output_char oc '\n'
          done)

let plane_xy_csv ~path ~k f =
  let g = Sf.grid f in
  assert (k >= 1 && k <= g.Grid.nz);
  with_out path (fun oc ->
      output_string oc "x\\y";
      for j = 1 to g.Grid.ny do
        output_string oc
          (Printf.sprintf ",%.9g"
             (g.Grid.y0 +. ((float_of_int (j - 1) +. 0.5) *. g.Grid.dy)))
      done;
      output_char oc '\n';
      for i = 1 to g.Grid.nx do
        output_string oc
          (Printf.sprintf "%.9g"
             (g.Grid.x0 +. ((float_of_int (i - 1) +. 0.5) *. g.Grid.dx)));
        for j = 1 to g.Grid.ny do
          output_string oc (Printf.sprintf ",%.9g" (Sf.get f i j k))
        done;
        output_char oc '\n'
      done)

let fields_vtk ~path named =
  match named with
  | [] -> invalid_arg "Dump.fields_vtk: no fields"
  | (_, first) :: _ ->
      let g = Sf.grid first in
      with_out path (fun oc ->
          output_string oc "# vtk DataFile Version 3.0\n";
          output_string oc "vpic-ocaml field dump\nASCII\n";
          output_string oc "DATASET STRUCTURED_POINTS\n";
          output_string oc
            (Printf.sprintf "DIMENSIONS %d %d %d\n" g.Grid.nx g.Grid.ny
               g.Grid.nz);
          output_string oc
            (Printf.sprintf "ORIGIN %.9g %.9g %.9g\n" g.Grid.x0 g.Grid.y0
               g.Grid.z0);
          output_string oc
            (Printf.sprintf "SPACING %.9g %.9g %.9g\n" g.Grid.dx g.Grid.dy
               g.Grid.dz);
          output_string oc
            (Printf.sprintf "POINT_DATA %d\n" (Grid.interior_count g));
          List.iter
            (fun (name, f) ->
              output_string oc
                (Printf.sprintf "SCALARS %s double 1\nLOOKUP_TABLE default\n"
                   name);
              Grid.iter_interior g (fun i j k ->
                  output_string oc (Printf.sprintf "%.9g\n" (Sf.get f i j k))))
            named)

let particles_csv ~path ?(max_particles = 100000) s =
  let np = Species.count s in
  let stride = max 1 ((np + max_particles - 1) / max_particles) in
  let g = s.Species.grid in
  with_out path (fun oc ->
      output_string oc "x,y,z,ux,uy,uz,w\n";
      let n = ref 0 in
      while !n < np do
        let p = Species.get s !n in
        let x, y, z = Particle.position g p in
        output_string oc
          (Printf.sprintf "%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g\n" x y z
             p.Particle.ux p.Particle.uy p.Particle.uz p.Particle.w);
        n := !n + stride
      done)

let read_csv path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        String.split_on_char ',' (input_line ic) |> List.map String.trim
      in
      let rows = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             rows :=
               (String.split_on_char ',' line |> List.map float_of_string)
               :: !rows
         done
       with End_of_file -> ());
      (header, List.rev !rows))
