(** Frequency analysis of recorded time series: a direct DFT (test-size
    signals) and a dominant-frequency estimator with parabolic peak
    interpolation — used to measure plasma-oscillation and EM dispersion
    frequencies against theory. *)

(** Power |X(f)|^2 at [nfreq] frequencies up to Nyquist; returns
    (omegas, power) for a signal sampled every [dt]. *)
val periodogram : dt:float -> float array -> float array * float array

(** Angular frequency of the strongest spectral peak (mean removed),
    refined by parabolic interpolation.  Requires >= 8 samples. *)
val dominant_omega : dt:float -> float array -> float

(** Count-based estimate: mean angular frequency from zero crossings of
    the mean-removed signal — robust for short, clean oscillations. *)
val zero_crossing_omega : dt:float -> float array -> float
