(** Simulation output: field slices and volumes, particle samples.

    VPIC's dump machinery writes binary field/hydro/particle files per
    rank; here we provide the analogous (plain-text) writers sized for
    the scaled-down runs: CSV slices for line plots, legacy-VTK
    structured-points volumes loadable by ParaView/VisIt, and CSV
    particle samples.  All writers are deterministic and round-trip
    tested. *)

module Sf = Vpic_grid.Scalar_field

(** Write one x-line (fixed j,k) of each named scalar as CSV columns:
    header [x,<name1>,<name2>,...], one row per interior i. *)
val line_x_csv :
  path:string -> j:int -> k:int -> (string * Sf.t) list -> unit

(** Write an x-y plane (fixed k) of one scalar as CSV (header row of y
    coordinates, then one row per x with leading x coordinate). *)
val plane_xy_csv : path:string -> k:int -> Sf.t -> unit

(** Legacy-VTK STRUCTURED_POINTS volume of the named scalars (interior
    cells only, ASCII). *)
val fields_vtk : path:string -> (string * Sf.t) list -> unit

(** CSV sample of up to [max_particles] particles (stride-sampled):
    columns x,y,z,ux,uy,uz,w. *)
val particles_csv :
  path:string -> ?max_particles:int -> Vpic_particle.Species.t -> unit

(** Parse back a {!line_x_csv} file: (header, rows). *)
val read_csv : string -> string list * float list list
