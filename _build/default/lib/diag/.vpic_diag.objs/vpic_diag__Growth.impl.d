lib/diag/growth.ml: Array Float Vpic_util
