lib/diag/dump.ml: Fun List Printf String Vpic_grid Vpic_particle
