lib/diag/history.ml: Array Float List Vpic_util
