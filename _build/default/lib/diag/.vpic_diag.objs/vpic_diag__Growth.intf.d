lib/diag/growth.mli:
