lib/diag/spectrum.ml: Array Float List
