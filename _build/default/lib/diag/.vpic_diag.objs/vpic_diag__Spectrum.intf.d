lib/diag/spectrum.mli:
