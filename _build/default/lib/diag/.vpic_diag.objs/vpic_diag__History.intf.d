lib/diag/history.mli: Vpic_util
