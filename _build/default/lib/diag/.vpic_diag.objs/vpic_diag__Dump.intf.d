lib/diag/dump.mli: Vpic_grid Vpic_particle
