let remove_mean xs =
  let n = Array.length xs in
  let mu = Array.fold_left ( +. ) 0. xs /. float_of_int (max 1 n) in
  Array.map (fun x -> x -. mu) xs

let periodogram ~dt xs =
  let xs = remove_mean xs in
  let n = Array.length xs in
  assert (n >= 2);
  let nfreq = n / 2 in
  let omegas = Array.make nfreq 0. in
  let power = Array.make nfreq 0. in
  for m = 0 to nfreq - 1 do
    let omega = 2. *. Float.pi *. float_of_int m /. (float_of_int n *. dt) in
    let re = ref 0. and im = ref 0. in
    for i = 0 to n - 1 do
      let phase = omega *. (float_of_int i *. dt) in
      re := !re +. (xs.(i) *. cos phase);
      im := !im -. (xs.(i) *. sin phase)
    done;
    omegas.(m) <- omega;
    power.(m) <- ((!re *. !re) +. (!im *. !im)) /. float_of_int n
  done;
  (omegas, power)

let dominant_omega ~dt xs =
  assert (Array.length xs >= 8);
  let omegas, power = periodogram ~dt xs in
  let best = ref 1 in
  for m = 2 to Array.length power - 1 do
    if power.(m) > power.(!best) then best := m
  done;
  let m = !best in
  if m <= 0 || m >= Array.length power - 1 then omegas.(m)
  else begin
    (* Parabolic interpolation of log power around the peak. *)
    let l = log (Float.max 1e-300 power.(m - 1)) in
    let c = log (Float.max 1e-300 power.(m)) in
    let r = log (Float.max 1e-300 power.(m + 1)) in
    let denom = l -. (2. *. c) +. r in
    let delta = if denom = 0. then 0. else 0.5 *. (l -. r) /. denom in
    let domega = omegas.(1) -. omegas.(0) in
    omegas.(m) +. (delta *. domega)
  end

let zero_crossing_omega ~dt xs =
  let xs = remove_mean xs in
  let n = Array.length xs in
  assert (n >= 4);
  (* Interpolated positions of upward zero crossings. *)
  let crossings = ref [] in
  for i = 0 to n - 2 do
    if xs.(i) <= 0. && xs.(i + 1) > 0. then begin
      let frac = -.xs.(i) /. (xs.(i + 1) -. xs.(i)) in
      crossings := ((float_of_int i +. frac) *. dt) :: !crossings
    end
  done;
  match List.rev !crossings with
  | first :: _ :: _ as all ->
      let last = List.nth all (List.length all - 1) in
      let periods = float_of_int (List.length all - 1) in
      2. *. Float.pi *. periods /. (last -. first)
  | _ -> 0.
