let rate_in_window ~times ~amps ~i_lo ~i_hi =
  assert (0 <= i_lo && i_lo < i_hi && i_hi <= Array.length times);
  let ts = Array.sub times i_lo (i_hi - i_lo) in
  let xs = Array.sub amps i_lo (i_hi - i_lo) in
  let _, gamma, r2 = Vpic_util.Stats.log_linear_fit ts xs in
  (gamma, r2)

let rate_auto ?(lo_frac = 1e-3) ?(hi_frac = 0.3) ~times ~amps () =
  let n = Array.length amps in
  assert (n = Array.length times && n >= 4);
  let peak = Array.fold_left Float.max neg_infinity amps in
  if peak <= 0. then (0., 0.)
  else begin
    let i_peak = ref 0 in
    for i = 0 to n - 1 do
      if amps.(i) = peak && !i_peak = 0 then i_peak := i
    done;
    (* Walk back from the peak to the growth span. *)
    let i_hi = ref !i_peak in
    while !i_hi > 0 && amps.(!i_hi) > hi_frac *. peak do
      decr i_hi
    done;
    let i_lo = ref !i_hi in
    while !i_lo > 0 && amps.(!i_lo) > lo_frac *. peak do
      decr i_lo
    done;
    if !i_hi - !i_lo < 4 then (0., 0.)
    else rate_in_window ~times ~amps ~i_lo:!i_lo ~i_hi:!i_hi
  end
