(** Exponential-growth-rate measurement for instability validation (the
    two-stream and SRS growth phases). *)

(** Fit amplitude ~ exp(gamma t) over the sample window [i_lo, i_hi)
    (log-linear least squares; non-positive samples skipped).
    Returns (gamma, r2). *)
val rate_in_window :
  times:float array -> amps:float array -> i_lo:int -> i_hi:int -> float * float

(** Automatic window: fit over the span where the amplitude climbs from
    [lo_frac] to [hi_frac] of its peak (defaults 1e-3 .. 0.3).  Returns
    (gamma, r2); gamma = 0 when no growth window exists. *)
val rate_auto :
  ?lo_frac:float ->
  ?hi_frac:float ->
  times:float array ->
  amps:float array ->
  unit ->
  float * float
