type t = {
  names : string list;
  mutable times_rev : float list;
  mutable rows_rev : float list list;
  mutable n : int;
}

let create names =
  assert (names <> []);
  { names; times_rev = []; rows_rev = []; n = 0 }

let channels t = t.names

let record t ~time ~values =
  assert (List.length values = List.length t.names);
  t.times_rev <- time :: t.times_rev;
  t.rows_rev <- values :: t.rows_rev;
  t.n <- t.n + 1

let length t = t.n
let times t = Array.of_list (List.rev t.times_rev)

let index_of t name =
  let rec find i = function
    | [] -> invalid_arg ("History.series: no channel " ^ name)
    | x :: rest -> if x = name then i else find (i + 1) rest
  in
  find 0 t.names

let series t name =
  let idx = index_of t name in
  Array.of_list (List.rev_map (fun row -> List.nth row idx) t.rows_rev)

let relative_drift t name =
  let xs = series t name in
  if Array.length xs = 0 then 0.
  else begin
    let x0 = xs.(0) in
    let denom = Float.max (Float.abs x0) 1e-300 in
    Array.fold_left (fun acc x -> Float.max acc (Float.abs (x -. x0) /. denom)) 0. xs
  end

let to_table t =
  let tbl = Vpic_util.Table.create ("time" :: t.names) in
  List.iter2
    (fun time row ->
      Vpic_util.Table.add_row tbl
        (Vpic_util.Table.cell_f time :: List.map Vpic_util.Table.cell_f row))
    (List.rev t.times_rev) (List.rev t.rows_rev);
  tbl

let save_csv t path = Vpic_util.Table.save_csv (to_table t) path
