(** Time-series recorder shared by examples, tests and the bench harness:
    named channels sampled at (step, time). *)

type t

val create : string list -> t
val channels : t -> string list

(** Append one sample; [values] must match the channel arity. *)
val record : t -> time:float -> values:float list -> unit

val length : t -> int
val times : t -> float array

(** Series of one named channel. *)
val series : t -> string -> float array

(** Relative drift of a channel: max |x - x0| / |x0|. *)
val relative_drift : t -> string -> float

(** Render as an aligned table (for small histories). *)
val to_table : t -> Vpic_util.Table.t

val save_csv : t -> string -> unit
