(** Message-passing runtime: the role MPI plays in the paper, implemented
    over OCaml 5 domains.  Ranks are spawned by {!run}; each gets a handle
    carrying its rank and the shared world.  Point-to-point messages are
    float arrays (buffered, non-blocking sends; blocking receives matched
    on (source, tag) in FIFO order per pair). *)

type t

(** [run ~ranks f] spawns [ranks] domains, runs [f handle] on each and
    returns the per-rank results (index = rank).  An exception in any rank
    is re-raised after all domains are joined. *)
val run : ranks:int -> (t -> 'a) -> 'a array

val rank : t -> int
val size : t -> int

(** {1 Point-to-point} *)

(** Non-blocking buffered send.  [tag] must be non-negative; negative tags
    are reserved for collectives. *)
val send : t -> dst:int -> tag:int -> float array -> unit

(** Blocking receive of the oldest message from [src] with [tag]. *)
val recv : t -> src:int -> tag:int -> float array

(** {1 Collectives} (every rank must participate) *)

val barrier : t -> unit
val allreduce_sum : t -> float -> float
val allreduce_min : t -> float -> float
val allreduce_max : t -> float -> float

(** Element-wise sum of equal-length arrays. *)
val allreduce_sum_array : t -> float array -> float array

(** [bcast t ~root x] returns root's [x] on every rank. *)
val bcast : t -> root:int -> float array -> float array

(** Gather each rank's array at the root (None elsewhere). *)
val gather : t -> root:int -> float array -> float array array option
