module Grid = Vpic_grid.Grid
module Bc = Vpic_grid.Bc
module Axis = Vpic_grid.Axis
module Species = Vpic_particle.Species
module Push = Vpic_particle.Push

type stats = { sent : int; received : int; settled : int; absorbed : int }

let floats_per_mover = 13

let encode ms =
  let n = List.length ms in
  let buf = Array.make (n * floats_per_mover) 0. in
  List.iteri
    (fun idx (m : Push.mover) ->
      let o = idx * floats_per_mover in
      buf.(o) <- float_of_int m.mi;
      buf.(o + 1) <- float_of_int m.mj;
      buf.(o + 2) <- float_of_int m.mk;
      buf.(o + 3) <- m.mfx;
      buf.(o + 4) <- m.mfy;
      buf.(o + 5) <- m.mfz;
      buf.(o + 6) <- m.mux;
      buf.(o + 7) <- m.muy;
      buf.(o + 8) <- m.muz;
      buf.(o + 9) <- m.mw;
      buf.(o + 10) <- m.mrx;
      buf.(o + 11) <- m.mry;
      buf.(o + 12) <- m.mrz)
    ms;
  buf

let decode buf =
  let n = Array.length buf / floats_per_mover in
  List.init n (fun idx ->
      let o = idx * floats_per_mover in
      { Push.mi = int_of_float buf.(o);
        mj = int_of_float buf.(o + 1);
        mk = int_of_float buf.(o + 2);
        mfx = buf.(o + 3);
        mfy = buf.(o + 4);
        mfz = buf.(o + 5);
        mux = buf.(o + 6);
        muy = buf.(o + 7);
        muz = buf.(o + 8);
        mw = buf.(o + 9);
        mrx = buf.(o + 10);
        mry = buf.(o + 11);
        mrz = buf.(o + 12) })

let tag_of ~axis ~dir = 200000 + (Axis.index axis * 10) + dir

let axis_cell axis (m : Push.mover) =
  match axis with Axis.X -> m.mi | Axis.Y -> m.mj | Axis.Z -> m.mk

let rebase axis (m : Push.mover) value =
  match axis with
  | Axis.X -> { m with Push.mi = value }
  | Axis.Y -> { m with Push.mj = value }
  | Axis.Z -> { m with Push.mk = value }

let exchange ?rng comm bc s fields movers =
  let g = s.Species.grid in
  let sent = ref 0 and received = ref 0 in
  let settled = ref 0 and absorbed = ref 0 in
  let pending = ref movers in
  (* A mover stops at its first Domain face, which can be any axis; after
     finishing on the neighbour it may need an axis the sweep already
     passed.  Each x->y->z sweep completes at least one crossing and a
     particle crosses at most three faces per step, so three sweeps always
     drain the list (all ranks run the same fixed count: collective). *)
  for _sweep = 1 to 3 do
  List.iter
    (fun axis ->
      let n_axis =
        match axis with
        | Axis.X -> g.Grid.nx
        | Axis.Y -> g.Grid.ny
        | Axis.Z -> g.Grid.nz
      in
      let ship side =
        match Bc.face bc axis side with
        | Bc.Domain nbr ->
            let ghost, rebased =
              match side with `Lo -> (0, n_axis) | `Hi -> (n_axis + 1, 1)
            in
            let mine, rest =
              List.partition (fun m -> axis_cell axis m = ghost) !pending
            in
            pending := rest;
            let ms = List.map (fun m -> rebase axis m rebased) mine in
            sent := !sent + List.length ms;
            let dir = match side with `Lo -> 0 | `Hi -> 1 in
            Comm.send comm ~dst:nbr ~tag:(tag_of ~axis ~dir) (encode ms)
        | _ -> ()
      in
      ship `Lo;
      ship `Hi;
      let arrive side =
        match Bc.face bc axis side with
        | Bc.Domain nbr ->
            (* Movers arriving across my lo face were sent by my lo
               neighbour toward its hi side (dir = 1). *)
            let dir = match side with `Lo -> 1 | `Hi -> 0 in
            let ms = decode (Comm.recv comm ~src:nbr ~tag:(tag_of ~axis ~dir)) in
            received := !received + List.length ms;
            let out = ref [] in
            let st, ab, _re =
              Push.finish_movers ~movers_out:out ?rng s fields bc ms
            in
            settled := !settled + st;
            absorbed := !absorbed + ab;
            pending := !out @ !pending
        | _ -> ()
      in
      arrive `Lo;
      arrive `Hi)
    Axis.all
  done;
  assert (!pending = []);
  { sent = !sent; received = !received; settled = !settled; absorbed = !absorbed }
