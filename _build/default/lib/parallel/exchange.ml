module Grid = Vpic_grid.Grid
module Sf = Vpic_grid.Scalar_field
module Bc = Vpic_grid.Bc
module Axis = Vpic_grid.Axis
module Boundary = Vpic_field.Boundary

let interior_extent g axis =
  match axis with
  | Axis.X -> g.Grid.nx
  | Axis.Y -> g.Grid.ny
  | Axis.Z -> g.Grid.nz

(* Tag layout: purpose (fill=0 / fold=1), axis, direction of travel
   (0 = toward lo neighbour, 1 = toward hi).  All scalars travelling
   through one face share one message (latency dominates here). *)
let tag ~purpose ~axis ~dir =
  (purpose * 100000) + (Axis.index axis * 10) + dir

let sides = [ `Lo; `Hi ]

(* Concatenate one plane per scalar into a single payload. *)
let pack scalars ~axis ~index =
  match scalars with
  | [] -> [||]
  | first :: _ ->
      let psize = Sf.plane_size (Sf.grid first) ~axis in
      let out = Array.make (List.length scalars * psize) 0. in
      List.iteri
        (fun slot f ->
          let p = Sf.extract_plane f ~axis ~index in
          Array.blit p 0 out (slot * psize) psize)
        scalars;
      out

let unpack scalars ~axis ~index ~accumulate payload =
  match scalars with
  | [] -> ()
  | first :: _ ->
      let psize = Sf.plane_size (Sf.grid first) ~axis in
      assert (Array.length payload = List.length scalars * psize);
      List.iteri
        (fun slot f ->
          let p = Array.sub payload (slot * psize) psize in
          if accumulate then Sf.add_plane f ~axis ~index p
          else Sf.set_plane f ~axis ~index p)
        scalars

(* For each axis in order: post sends for both domain faces, then receive
   both, then apply local BCs to non-domain faces.  Sends are buffered so
   there is no deadlock regardless of topology; processing the axes
   sequentially with full-extent planes transports edge and corner ghosts
   in up to three hops. *)
let fill_ghosts comm bc scalars =
  match scalars with
  | [] -> ()
  | first :: _ ->
      let g = Sf.grid first in
      List.iter
        (fun axis ->
          let n = interior_extent g axis in
          List.iter
            (fun side ->
              match Bc.face bc axis side with
              | Bc.Domain nbr ->
                  (* hi neighbour needs my interior hi plane for its lo
                     ghost; lo neighbour needs my interior lo plane. *)
                  let src_plane, dir =
                    match side with `Hi -> (n, 1) | `Lo -> (1, 0)
                  in
                  Comm.send comm ~dst:nbr
                    ~tag:(tag ~purpose:0 ~axis ~dir)
                    (pack scalars ~axis ~index:src_plane)
              | _ -> ())
            sides;
          List.iter
            (fun side ->
              match Bc.face bc axis side with
              | Bc.Domain nbr ->
                  (* My lo ghost was sent by my lo neighbour travelling
                     toward hi (dir=1); my hi ghost travels toward lo. *)
                  let ghost_plane, dir =
                    match side with `Lo -> (0, 1) | `Hi -> (n + 1, 0)
                  in
                  let data =
                    Comm.recv comm ~src:nbr ~tag:(tag ~purpose:0 ~axis ~dir)
                  in
                  unpack scalars ~axis ~index:ghost_plane ~accumulate:false data
              | kind ->
                  List.iter
                    (fun f -> Boundary.fill_face kind f ~axis ~side)
                    scalars)
            sides)
        Axis.all

let fold_ghosts comm bc scalars =
  match scalars with
  | [] -> ()
  | first :: _ ->
      let g = Sf.grid first in
      List.iter
        (fun axis ->
          let n = interior_extent g axis in
          let psize = Sf.plane_size g ~axis in
          List.iter
            (fun side ->
              match Bc.face bc axis side with
              | Bc.Domain nbr ->
                  let ghost_plane, dir =
                    match side with `Lo -> (0, 0) | `Hi -> (n + 1, 1)
                  in
                  Comm.send comm ~dst:nbr
                    ~tag:(tag ~purpose:1 ~axis ~dir)
                    (pack scalars ~axis ~index:ghost_plane);
                  (* Zero the shipped planes so nothing is counted twice. *)
                  let zeros = Array.make psize 0. in
                  List.iter
                    (fun f -> Sf.set_plane f ~axis ~index:ghost_plane zeros)
                    scalars
              | _ -> ())
            sides;
          List.iter
            (fun side ->
              match Bc.face bc axis side with
              | Bc.Domain nbr ->
                  (* Data arriving from my hi neighbour was its lo ghost
                     (dir=0): it lands in my interior hi plane. *)
                  let dst_plane, dir =
                    match side with `Hi -> (n, 0) | `Lo -> (1, 1)
                  in
                  let data =
                    Comm.recv comm ~src:nbr ~tag:(tag ~purpose:1 ~axis ~dir)
                  in
                  unpack scalars ~axis ~index:dst_plane ~accumulate:true data
              | kind ->
                  List.iter
                    (fun f -> Boundary.fold_face kind f ~axis ~side)
                    scalars)
            sides)
        Axis.all
