(** Ghost-plane exchange across the domain decomposition.

    Planes span the full allocated extent (ghosts included) of the two
    transverse axes, and the three axes are processed sequentially (x, y,
    z), so edge and corner ghosts are transported correctly in two/three
    hops — the standard trick that avoids 26-neighbour messaging.

    Non-[Domain] faces fall back to the local boundary handling of
    [Vpic_field.Boundary], making these functions the single entry point
    for both serial and parallel runs. *)

module Sf = Vpic_grid.Scalar_field
module Bc = Vpic_grid.Bc

(** Copy ghost planes of each scalar from neighbouring ranks (and apply
    local BCs on non-domain faces).  Every rank of the communicator must
    call this with the same scalar count. *)
val fill_ghosts : Comm.t -> Bc.t -> Sf.t list -> unit

(** Add ghost-plane accumulations (currents, rho) into the neighbouring
    rank's interior (and fold locally on non-domain faces), then zero the
    shipped ghost planes. *)
val fold_ghosts : Comm.t -> Bc.t -> Sf.t list -> unit
