lib/parallel/migrate.mli: Comm Vpic_field Vpic_grid Vpic_particle Vpic_util
