lib/parallel/exchange.ml: Array Comm List Vpic_field Vpic_grid
