lib/parallel/comm.mli:
