lib/parallel/comm.ml: Array Condition Domain Float Hashtbl Mutex Queue
