lib/parallel/exchange.mli: Comm Vpic_grid
