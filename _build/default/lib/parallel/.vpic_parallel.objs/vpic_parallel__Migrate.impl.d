lib/parallel/migrate.ml: Array Comm List Vpic_grid Vpic_particle
