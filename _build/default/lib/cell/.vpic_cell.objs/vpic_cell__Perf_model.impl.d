lib/cell/perf_model.ml: Float List Roadrunner Spe_pipeline Vpic_particle
