lib/cell/spe_pipeline.mli: Roadrunner Vpic_field Vpic_grid Vpic_particle Vpic_util
