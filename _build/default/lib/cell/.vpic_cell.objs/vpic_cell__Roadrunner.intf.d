lib/cell/roadrunner.mli:
