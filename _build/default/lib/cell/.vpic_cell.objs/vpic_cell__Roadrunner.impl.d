lib/cell/roadrunner.ml: Printf
