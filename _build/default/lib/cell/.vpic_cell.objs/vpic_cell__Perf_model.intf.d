lib/cell/perf_model.mli: Roadrunner
