lib/cell/spe_pipeline.ml: Array Float Hashtbl List Roadrunner Vpic_grid Vpic_particle Vpic_util
