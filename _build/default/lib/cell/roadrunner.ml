type t = {
  name : string;
  nodes : int;
  cells_per_node : int;
  spes_per_cell : int;
  spe_clock_hz : float;
  spe_flops_per_cycle_sp : float;
  spe_flops_per_cycle_dp : float;
  cell_mem_bw : float;
  opteron_cores_per_node : int;
  opteron_flops_sp : float;
  nic_bw : float;
  nic_latency : float;
}

let nodes_per_cu = 180

let with_cus cus =
  assert (cus >= 1);
  { name = Printf.sprintf "Roadrunner(%d CU)" cus;
    nodes = cus * nodes_per_cu;
    cells_per_node = 4;
    spes_per_cell = 8;
    spe_clock_hz = 3.2e9;
    spe_flops_per_cycle_sp = 8.;
    spe_flops_per_cycle_dp = 4.;
    cell_mem_bw = 25.6e9;
    opteron_cores_per_node = 4;
    opteron_flops_sp = 9.2e9;
    nic_bw = 2.0e9;
    nic_latency = 2.0e-6 }

let full = { (with_cus 17) with name = "Roadrunner" }
let total_cells m = m.nodes * m.cells_per_node
let total_spes m = total_cells m * m.spes_per_cell

let peak_sp_flops m =
  float_of_int (total_spes m) *. m.spe_clock_hz *. m.spe_flops_per_cycle_sp

let peak_dp_flops m =
  float_of_int (total_spes m) *. m.spe_clock_hz *. m.spe_flops_per_cycle_dp

let bw_per_spe m = m.cell_mem_bw /. float_of_int m.spes_per_cell
