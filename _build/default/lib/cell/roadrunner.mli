(** Hardware description of LANL's Roadrunner as fielded for the paper's
    runs (2008): 17 connected units (CUs) of 180 hybrid "triblade" nodes;
    each node pairs two dual-core Opterons with four PowerXCell 8i chips
    (8 SPEs each, 3.2 GHz, 8 single-precision flops/cycle/SPE). *)

type t = {
  name : string;
  nodes : int;              (** compute nodes (3060 full system) *)
  cells_per_node : int;     (** PowerXCell 8i chips per node (4) *)
  spes_per_cell : int;      (** 8 *)
  spe_clock_hz : float;     (** 3.2e9 *)
  spe_flops_per_cycle_sp : float;  (** 8 (4-wide SIMD FMA) *)
  spe_flops_per_cycle_dp : float;  (** 4 on PowerXCell 8i *)
  cell_mem_bw : float;      (** bytes/s XDR local store DMA bandwidth, 25.6e9 *)
  opteron_cores_per_node : int;    (** 4 *)
  opteron_flops_sp : float; (** per core, ~ 9.2e9 (2.2 GHz, 4-wide SSE) *)
  nic_bw : float;           (** bytes/s per node per direction (IB 4x DDR ~ 2e9) *)
  nic_latency : float;      (** seconds (~ 2e-6) *)
}

(** The full 17-CU machine of the paper. *)
val full : t

(** A partial machine of [cus] connected units (180 nodes each). *)
val with_cus : int -> t

val total_cells : t -> int
val total_spes : t -> int

(** Peak single-precision flop/s of the Cell SPEs (the paper's yardstick:
    2.507e15 for the full system). *)
val peak_sp_flops : t -> float

val peak_dp_flops : t -> float

(** Aggregate DMA bandwidth available to one SPE (cell_mem_bw shared by
    the 8 SPEs of a chip). *)
val bw_per_spe : t -> float
