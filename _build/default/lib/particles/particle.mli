(** A single macro-particle in boxed form, used for loading, migration
    between ranks and tests.  Hot loops use the SoA storage in {!Species}
    instead.

    Position is stored VPIC-style: owning cell (interior indices, or first
    ghost layer for outbound particles) plus in-cell fractional offsets in
    [0,1).  Momentum is u = gamma v in units of c. *)

type t = {
  i : int;
  j : int;
  k : int;
  fx : float;
  fy : float;
  fz : float;
  ux : float;
  uy : float;
  uz : float;
  w : float;  (** statistical weight (physical particles represented) *)
}

val gamma : t -> float

(** Velocity vector v = u/gamma. *)
val velocity : t -> Vpic_util.Vec3.t

(** Physical position on [grid]. *)
val position : Vpic_grid.Grid.t -> t -> float * float * float

(** Build from a physical position (must lie inside the grid interior). *)
val at :
  Vpic_grid.Grid.t ->
  x:float -> y:float -> z:float ->
  ux:float -> uy:float -> uz:float ->
  w:float ->
  t

val pp : Format.formatter -> t -> unit
