module Grid = Vpic_grid.Grid
module Sf = Vpic_grid.Scalar_field
module Bc = Vpic_grid.Bc
module Perf = Vpic_util.Perf

let flops_per_push = 70.
let flops_per_segment = 57.

type mover = {
  mi : int;
  mj : int;
  mk : int;
  mfx : float;
  mfy : float;
  mfz : float;
  mux : float;
  muy : float;
  muz : float;
  mw : float;
  mrx : float;
  mry : float;
  mrz : float;
}

type stats = {
  advanced : int;
  segments : int;
  absorbed : int;
  reflected : int;
  refluxed : int;
  outbound : int;
}

type kind = Boris | Vay | Higuera_cary

let kind_to_string = function
  | Boris -> "boris"
  | Vay -> "vay"
  | Higuera_cary -> "higuera-cary"

let boris ~u ~ex ~ey ~ez ~bx ~by ~bz ~qdt_2m =
  let ux = u.(0) +. (qdt_2m *. ex) in
  let uy = u.(1) +. (qdt_2m *. ey) in
  let uz = u.(2) +. (qdt_2m *. ez) in
  let gamma_m = sqrt (1. +. (ux *. ux) +. (uy *. uy) +. (uz *. uz)) in
  let f = qdt_2m /. gamma_m in
  let tx = f *. bx and ty = f *. by and tz = f *. bz in
  let t2 = (tx *. tx) +. (ty *. ty) +. (tz *. tz) in
  let sx = 2. *. tx /. (1. +. t2) in
  let sy = 2. *. ty /. (1. +. t2) in
  let sz = 2. *. tz /. (1. +. t2) in
  (* u' = u- + u- x t *)
  let px = ux +. ((uy *. tz) -. (uz *. ty)) in
  let py = uy +. ((uz *. tx) -. (ux *. tz)) in
  let pz = uz +. ((ux *. ty) -. (uy *. tx)) in
  (* u+ = u- + u' x s *)
  let ux = ux +. ((py *. sz) -. (pz *. sy)) in
  let uy = uy +. ((pz *. sx) -. (px *. sz)) in
  let uz = uz +. ((px *. sy) -. (py *. sx)) in
  u.(0) <- ux +. (qdt_2m *. ex);
  u.(1) <- uy +. (qdt_2m *. ey);
  u.(2) <- uz +. (qdt_2m *. ez)

(* Shared tail of the Vay/Higuera-Cary updates: given the effective
   momentum [px,py,pz], the new-gamma solution of
   g^2 = (sigma + sqrt(sigma^2 + 4 (tau^2 + w^2)))/2 with w = p.tau,
   apply the t = tau/g rotation-projection. *)
let drift_preserving_tail ~u ~px ~py ~pz ~tx ~ty ~tz =
  let tau2 = (tx *. tx) +. (ty *. ty) +. (tz *. tz) in
  let w = (px *. tx) +. (py *. ty) +. (pz *. tz) in
  let gamma_p2 = 1. +. (px *. px) +. (py *. py) +. (pz *. pz) in
  let sigma = gamma_p2 -. tau2 in
  let gamma_new =
    sqrt (0.5 *. (sigma +. sqrt ((sigma *. sigma) +. (4. *. (tau2 +. (w *. w))))))
  in
  let tx = tx /. gamma_new and ty = ty /. gamma_new and tz = tz /. gamma_new in
  let s = 1. /. (1. +. ((tx *. tx) +. (ty *. ty) +. (tz *. tz))) in
  let pdt = (px *. tx) +. (py *. ty) +. (pz *. tz) in
  u.(0) <- s *. (px +. (pdt *. tx) +. ((py *. tz) -. (pz *. ty)));
  u.(1) <- s *. (py +. (pdt *. ty) +. ((pz *. tx) -. (px *. tz)));
  u.(2) <- s *. (pz +. (pdt *. tz) +. ((px *. ty) -. (py *. tx)))

let vay ~u ~ex ~ey ~ez ~bx ~by ~bz ~qdt_2m =
  (* Vay (2008): full-E kick plus half v x B using the OLD velocity, then
     the drift-preserving gamma solve and rotation. *)
  let ux = u.(0) and uy = u.(1) and uz = u.(2) in
  let gamma = sqrt (1. +. (ux *. ux) +. (uy *. uy) +. (uz *. uz)) in
  let vx = ux /. gamma and vy = uy /. gamma and vz = uz /. gamma in
  let px =
    ux +. (2. *. qdt_2m *. ex) +. (qdt_2m *. ((vy *. bz) -. (vz *. by)))
  in
  let py =
    uy +. (2. *. qdt_2m *. ey) +. (qdt_2m *. ((vz *. bx) -. (vx *. bz)))
  in
  let pz =
    uz +. (2. *. qdt_2m *. ez) +. (qdt_2m *. ((vx *. by) -. (vy *. bx)))
  in
  drift_preserving_tail ~u ~px ~py ~pz ~tx:(qdt_2m *. bx) ~ty:(qdt_2m *. by)
    ~tz:(qdt_2m *. bz)

let higuera_cary ~u ~ex ~ey ~ez ~bx ~by ~bz ~qdt_2m =
  (* Higuera & Cary (2017): half-E kick, drift-preserving rotation with
     gamma from the implicit mid-step solve, rotation applied twice via
     the closing u+ x t term, then the second half-E kick. *)
  let px = u.(0) +. (qdt_2m *. ex) in
  let py = u.(1) +. (qdt_2m *. ey) in
  let pz = u.(2) +. (qdt_2m *. ez) in
  drift_preserving_tail ~u ~px ~py ~pz ~tx:(qdt_2m *. bx) ~ty:(qdt_2m *. by)
    ~tz:(qdt_2m *. bz);
  (* after the tail, u holds u+ (the half-rotated momentum); close with
     the u+ x t term at the same mid-step gamma, then the final E
     half-kick (the published HC2017 update) *)
  let upx = u.(0) and upy = u.(1) and upz = u.(2) in
  let tau2 =
    (qdt_2m *. bx *. qdt_2m *. bx) +. (qdt_2m *. by *. qdt_2m *. by)
    +. (qdt_2m *. bz *. qdt_2m *. bz)
  in
  let w = (px *. qdt_2m *. bx) +. (py *. qdt_2m *. by) +. (pz *. qdt_2m *. bz) in
  let gamma_m2 = 1. +. (px *. px) +. (py *. py) +. (pz *. pz) in
  let sigma = gamma_m2 -. tau2 in
  let gamma_new =
    sqrt (0.5 *. (sigma +. sqrt ((sigma *. sigma) +. (4. *. (tau2 +. (w *. w))))))
  in
  let tx = qdt_2m *. bx /. gamma_new
  and ty = qdt_2m *. by /. gamma_new
  and tz = qdt_2m *. bz /. gamma_new in
  u.(0) <- upx +. (qdt_2m *. ex) +. ((upy *. tz) -. (upz *. ty));
  u.(1) <- upy +. (qdt_2m *. ey) +. ((upz *. tx) -. (upx *. tz));
  u.(2) <- upz +. (qdt_2m *. ez) +. ((upx *. ty) -. (upy *. tx))

(* Deposit one straight segment (x1..x2 etc, in-cell coordinates in [0,1])
   of a particle with per-axis current coefficients (cx,cy,cz) into the
   J accumulators of the cell at flat voxel [v].  Villasenor-Buneman
   first-order, charge-conserving form. *)
let deposit_segment (jx : Sf.data) (jy : Sf.data) (jz : Sf.data) gx gxy v ~x1
    ~y1 ~z1 ~x2 ~y2 ~z2 ~cx ~cy ~cz =
  let open Bigarray.Array1 in
  let dx = x2 -. x1 and dy = y2 -. y1 and dz = z2 -. z1 in
  let xb = 0.5 *. (x1 +. x2) in
  let yb = 0.5 *. (y1 +. y2) in
  let zb = 0.5 *. (z1 +. z2) in
  let add a idx v' = unsafe_set a idx (unsafe_get a idx +. v') in
  (* Jx: transverse (y,z) *)
  let qx = cx *. dx in
  if qx <> 0. then begin
    let corr = dy *. dz /. 12. in
    add jx v (qx *. (((1. -. yb) *. (1. -. zb)) +. corr));
    add jx (v + gx) (qx *. ((yb *. (1. -. zb)) -. corr));
    add jx (v + gxy) (qx *. (((1. -. yb) *. zb) -. corr));
    add jx (v + gx + gxy) (qx *. ((yb *. zb) +. corr))
  end;
  (* Jy: transverse (z,x) *)
  let qy = cy *. dy in
  if qy <> 0. then begin
    let corr = dz *. dx /. 12. in
    add jy v (qy *. (((1. -. zb) *. (1. -. xb)) +. corr));
    add jy (v + gxy) (qy *. ((zb *. (1. -. xb)) -. corr));
    add jy (v + 1) (qy *. (((1. -. zb) *. xb) -. corr));
    add jy (v + gxy + 1) (qy *. ((zb *. xb) +. corr))
  end;
  (* Jz: transverse (x,y) *)
  let qz = cz *. dz in
  if qz <> 0. then begin
    let corr = dx *. dy /. 12. in
    add jz v (qz *. (((1. -. xb) *. (1. -. yb)) +. corr));
    add jz (v + 1) (qz *. ((xb *. (1. -. yb)) -. corr));
    add jz (v + gx) (qz *. (((1. -. xb) *. yb) -. corr));
    add jz (v + gx + 1) (qz *. ((xb *. yb) +. corr))
  end

type face_action = Wrap | Reflect | Absorb | Reflux of float | Stop

let face_action = function
  | Bc.Periodic -> Wrap
  | Bc.Conducting -> Reflect
  | Bc.Absorbing -> Absorb
  | Bc.Refluxing uth -> Reflux uth
  | Bc.Domain _ -> Stop

(* Everything the walk needs, prepared once per species push. *)
type walk_env = {
  g : Grid.t;
  jxa : Sf.data;
  jya : Sf.data;
  jza : Sf.data;
  gx : int;
  gxy : int;
  actions : face_action array; (* indexed 2*axis + (1 if hi side) *)
  extents : int array;
  segments : int ref;
  reflected : int ref;
  refluxed : int ref;
  rng : Vpic_util.Rng.t option; (* required for Refluxing faces *)
}

let make_env ?rng g f bc ~segments ~reflected ~refluxed =
  { g;
    jxa = Sf.data f.Vpic_field.Em_field.jx;
    jya = Sf.data f.Vpic_field.Em_field.jy;
    jza = Sf.data f.Vpic_field.Em_field.jz;
    gx = g.Grid.gx;
    gxy = g.Grid.gx * g.Grid.gy;
    actions =
      [| face_action bc.Bc.xlo; face_action bc.Bc.xhi;
         face_action bc.Bc.ylo; face_action bc.Bc.yhi;
         face_action bc.Bc.zlo; face_action bc.Bc.zhi |];
    extents = [| g.Grid.nx; g.Grid.ny; g.Grid.nz |];
    segments;
    reflected;
    refluxed;
    rng }

type walk_status = Settled | Absorbed | Outbound

(* Walk a particle through its remaining displacement, splitting at face
   crossings and depositing each segment.  State arrays:
   wk.(0..2) in-cell position, wk.(3..5) remaining displacement (cell
   units, < 1 per axis), cell.(0..2) owning cell, u.(0..2) momentum
   (mutated by reflections).  On [Outbound], the cell sits in the first
   ghost layer at the entry face and wk.(3..5) holds what is left of the
   move -- the receiving rank completes it. *)
let walk env ~wk ~cell ~u ~cxc ~cyc ~czc =
  let status = ref Settled in
  let moving = ref true in
  let guard = ref 0 in
  while !moving && !status = Settled do
    incr guard;
    assert (!guard <= 12);
    (* Fraction [smin] of the remaining displacement until the first face
       crossing (crossing code: 2*axis + hi, or -1 for none); ties resolve
       to the later axis, the remainder handled next iteration as
       zero-length steps. *)
    let smin = ref 1.0 in
    let cross = ref (-1) in
    for a = 0 to 2 do
      let r = Array.unsafe_get wk (3 + a) in
      if r > 0. then begin
        let t = (1. -. Array.unsafe_get wk a) /. r in
        if t <= !smin then begin
          smin := (if t < 0. then 0. else t);
          cross := (2 * a) + 1
        end
      end
      else if r < 0. then begin
        let t = Array.unsafe_get wk a /. -.r in
        if t <= !smin then begin
          smin := (if t < 0. then 0. else t);
          cross := 2 * a
        end
      end
    done;
    let sfrac = !smin in
    let x1 = wk.(0) and y1 = wk.(1) and z1 = wk.(2) in
    let x2 = x1 +. (sfrac *. wk.(3)) in
    let y2 = y1 +. (sfrac *. wk.(4)) in
    let z2 = z1 +. (sfrac *. wk.(5)) in
    let v = Grid.voxel env.g cell.(0) cell.(1) cell.(2) in
    deposit_segment env.jxa env.jya env.jza env.gx env.gxy v ~x1 ~y1 ~z1 ~x2
      ~y2 ~z2 ~cx:cxc ~cy:cyc ~cz:czc;
    incr env.segments;
    wk.(0) <- x2;
    wk.(1) <- y2;
    wk.(2) <- z2;
    wk.(3) <- (1. -. sfrac) *. wk.(3);
    wk.(4) <- (1. -. sfrac) *. wk.(4);
    wk.(5) <- (1. -. sfrac) *. wk.(5);
    if !cross < 0 then moving := false
    else begin
      let a = !cross / 2 in
      let hi = !cross land 1 = 1 in
      let n_axis = Array.unsafe_get env.extents a in
      let leaving = if hi then cell.(a) = n_axis else cell.(a) = 1 in
      let action = if leaving then env.actions.(!cross) else Wrap in
      match action with
      | Wrap ->
          cell.(a) <-
            (if not leaving then cell.(a) + (if hi then 1 else -1)
             else if hi then 1
             else n_axis);
          wk.(a) <- (if hi then 0. else 1.)
      | Stop ->
          (* Step into the ghost layer and stop: the neighbour finishes
             the move (keeps deposition within one ghost layer). *)
          cell.(a) <- (if hi then n_axis + 1 else 0);
          wk.(a) <- (if hi then 0. else 1.);
          status := Outbound
      | Reflect ->
          wk.(a) <- (if hi then 1. else 0.);
          wk.(3 + a) <- -.wk.(3 + a);
          u.(a) <- -.u.(a);
          incr env.reflected
      | Reflux uth -> begin
          match env.rng with
          | None ->
              invalid_arg
                "Push: refluxing face crossed without an rng (pass ~rng)"
          | Some rng ->
              (* Re-emit from a thermal bath at the wall: inward normal
                 momentum is flux-weighted (Rayleigh), tangentials are
                 Maxwellian; the rest of the step is forfeited (the wall
                 swallowed the outgoing particle). *)
              let inward = if hi then -1. else 1. in
              let un =
                inward *. uth
                *. sqrt (-2. *. log (Float.max 1e-300 (Vpic_util.Rng.uniform rng)))
              in
              wk.(a) <- (if hi then 1. else 0.);
              for b = 0 to 2 do
                if b = a then u.(b) <- un
                else u.(b) <- uth *. Vpic_util.Rng.normal rng;
                wk.(3 + b) <- 0.
              done;
              incr env.refluxed
        end
      | Absorb -> status := Absorbed
    end
  done;
  if !status = Settled then
    for a = 0 to 2 do
      (* Guard against landing exactly on a face in floating point. *)
      if wk.(a) >= 1. then wk.(a) <- Float.pred 1.
      else if wk.(a) < 0. then wk.(a) <- 0.
    done;
  !status

let mover_of ~cell ~wk ~u ~w =
  { mi = cell.(0);
    mj = cell.(1);
    mk = cell.(2);
    mfx = wk.(0);
    mfy = wk.(1);
    mfz = wk.(2);
    mux = u.(0);
    muy = u.(1);
    muz = u.(2);
    mw = w;
    mrx = wk.(3);
    mry = wk.(4);
    mrz = wk.(5) }

let advance ?(perf = Perf.global) ?(first = 0) ?count ?movers ?gather_from
    ?rng ?(pusher = Boris) (s : Species.t) f bc =
  let g = s.Species.grid in
  assert (g == f.Vpic_field.Em_field.grid);
  let gf = match gather_from with Some gf -> gf | None -> f in
  assert (g == gf.Vpic_field.Em_field.grid);
  let dt = g.Grid.dt in
  let qdt_2m = 0.5 *. s.Species.q *. dt /. s.Species.m in
  let inv_dx = 1. /. g.Grid.dx
  and inv_dy = 1. /. g.Grid.dy
  and inv_dz = 1. /. g.Grid.dz in
  (* Per-axis current coefficients modulo the particle's q*w factor. *)
  let kx = inv_dy *. inv_dz /. dt in
  let ky = inv_dz *. inv_dx /. dt in
  let kz = inv_dx *. inv_dy /. dt in
  let segments = ref 0 in
  let reflected = ref 0 in
  let refluxed = ref 0 in
  let env = make_env ?rng g f bc ~segments ~reflected ~refluxed in
  let fields = Array.make 6 0. in
  let u = Array.make 3 0. in
  let wk = Array.make 6 0. in
  let cell = Array.make 3 0 in
  let absorbed = ref 0 in
  let outbound = ref 0 in
  let dead = ref [] in
  let np0 = Species.count s in
  let last =
    match count with
    | None -> np0 - 1
    | Some c ->
        assert (first >= 0 && first + c <= np0);
        first + c - 1
  in
  let sci = s.Species.ci and scj = s.Species.cj and sck = s.Species.ck in
  let sfx = s.Species.fx and sfy = s.Species.fy and sfz = s.Species.fz in
  let sux = s.Species.ux and suy = s.Species.uy and suz = s.Species.uz in
  let sw = s.Species.w in
  for n = first to last do
    cell.(0) <- Array.unsafe_get sci n;
    cell.(1) <- Array.unsafe_get scj n;
    cell.(2) <- Array.unsafe_get sck n;
    Interp.gather_into gf ~i:cell.(0) ~j:cell.(1) ~k:cell.(2)
      ~fx:(Array.unsafe_get sfx n) ~fy:(Array.unsafe_get sfy n)
      ~fz:(Array.unsafe_get sfz n) ~out:fields;
    u.(0) <- Array.unsafe_get sux n;
    u.(1) <- Array.unsafe_get suy n;
    u.(2) <- Array.unsafe_get suz n;
    (match pusher with
    | Boris ->
        boris ~u ~ex:fields.(0) ~ey:fields.(1) ~ez:fields.(2) ~bx:fields.(3)
          ~by:fields.(4) ~bz:fields.(5) ~qdt_2m
    | Vay ->
        vay ~u ~ex:fields.(0) ~ey:fields.(1) ~ez:fields.(2) ~bx:fields.(3)
          ~by:fields.(4) ~bz:fields.(5) ~qdt_2m
    | Higuera_cary ->
        higuera_cary ~u ~ex:fields.(0) ~ey:fields.(1) ~ez:fields.(2)
          ~bx:fields.(3) ~by:fields.(4) ~bz:fields.(5) ~qdt_2m);
    let inv_gamma =
      1. /. sqrt (1. +. (u.(0) *. u.(0)) +. (u.(1) *. u.(1)) +. (u.(2) *. u.(2)))
    in
    (* Remaining displacement in cell units; < 1 per axis under CFL. *)
    wk.(0) <- Array.unsafe_get sfx n;
    wk.(1) <- Array.unsafe_get sfy n;
    wk.(2) <- Array.unsafe_get sfz n;
    wk.(3) <- u.(0) *. inv_gamma *. dt *. inv_dx;
    wk.(4) <- u.(1) *. inv_gamma *. dt *. inv_dy;
    wk.(5) <- u.(2) *. inv_gamma *. dt *. inv_dz;
    let w = Array.unsafe_get sw n in
    let qw = s.Species.q *. w in
    let cxc = qw *. kx and cyc = qw *. ky and czc = qw *. kz in
    match walk env ~wk ~cell ~u ~cxc ~cyc ~czc with
    | Settled ->
        Array.unsafe_set sci n cell.(0);
        Array.unsafe_set scj n cell.(1);
        Array.unsafe_set sck n cell.(2);
        Array.unsafe_set sfx n wk.(0);
        Array.unsafe_set sfy n wk.(1);
        Array.unsafe_set sfz n wk.(2);
        Array.unsafe_set sux n u.(0);
        Array.unsafe_set suy n u.(1);
        Array.unsafe_set suz n u.(2)
    | Absorbed ->
        incr absorbed;
        dead := n :: !dead
    | Outbound -> begin
        match movers with
        | None ->
            invalid_arg
              "Push.advance: domain face crossed without a movers buffer"
        | Some buf ->
            buf := mover_of ~cell ~wk ~u ~w :: !buf;
            incr outbound;
            dead := n :: !dead
      end
  done;
  (* Remove absorbed/outbound particles, highest index first so the
     swap-with-last removals stay valid (dead is in descending order). *)
  List.iter (fun n -> Species.remove s n) !dead;
  let advanced = last - first + 1 in
  Perf.add_particle_steps perf (float_of_int advanced);
  Perf.add_flops perf
    ((float_of_int advanced *. (Interp.flops_per_gather +. flops_per_push))
    +. (float_of_int !segments *. flops_per_segment));
  Perf.add_bytes perf (float_of_int advanced *. (64. +. 192. +. 96.));
  { advanced;
    segments = !segments;
    absorbed = !absorbed;
    reflected = !reflected;
    refluxed = !refluxed;
    outbound = !outbound }

let finish_movers ?(perf = Perf.global) ?movers_out ?rng (s : Species.t) f bc
    incoming =
  let g = s.Species.grid in
  assert (g == f.Vpic_field.Em_field.grid);
  let dt = g.Grid.dt in
  let kx = 1. /. (g.Grid.dy *. g.Grid.dz *. dt) in
  let ky = 1. /. (g.Grid.dz *. g.Grid.dx *. dt) in
  let kz = 1. /. (g.Grid.dx *. g.Grid.dy *. dt) in
  let segments = ref 0 in
  let reflected = ref 0 in
  let refluxed = ref 0 in
  let env = make_env ?rng g f bc ~segments ~reflected ~refluxed in
  let u = Array.make 3 0. in
  let wk = Array.make 6 0. in
  let cell = Array.make 3 0 in
  let settled = ref 0 and absorbed = ref 0 and reemitted = ref 0 in
  List.iter
    (fun m ->
      cell.(0) <- m.mi;
      cell.(1) <- m.mj;
      cell.(2) <- m.mk;
      assert (Grid.is_interior g m.mi m.mj m.mk);
      wk.(0) <- m.mfx;
      wk.(1) <- m.mfy;
      wk.(2) <- m.mfz;
      wk.(3) <- m.mrx;
      wk.(4) <- m.mry;
      wk.(5) <- m.mrz;
      u.(0) <- m.mux;
      u.(1) <- m.muy;
      u.(2) <- m.muz;
      let qw = s.Species.q *. m.mw in
      match
        walk env ~wk ~cell ~u ~cxc:(qw *. kx) ~cyc:(qw *. ky) ~czc:(qw *. kz)
      with
      | Settled ->
          incr settled;
          Species.append s
            { i = cell.(0);
              j = cell.(1);
              k = cell.(2);
              fx = wk.(0);
              fy = wk.(1);
              fz = wk.(2);
              ux = u.(0);
              uy = u.(1);
              uz = u.(2);
              w = m.mw }
      | Absorbed -> incr absorbed
      | Outbound -> begin
          match movers_out with
          | None ->
              invalid_arg
                "Push.finish_movers: further domain crossing without a buffer"
          | Some buf ->
              incr reemitted;
              buf := mover_of ~cell ~wk ~u ~w:m.mw :: !buf
        end)
    incoming;
  Perf.add_flops perf (float_of_int !segments *. flops_per_segment);
  (!settled, !absorbed, !reemitted)
