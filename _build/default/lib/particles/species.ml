module Grid = Vpic_grid.Grid

type t = {
  name : string;
  q : float;
  m : float;
  grid : Grid.t;
  mutable np : int;
  mutable cap : int;
  mutable ci : int array;
  mutable cj : int array;
  mutable ck : int array;
  mutable fx : float array;
  mutable fy : float array;
  mutable fz : float array;
  mutable ux : float array;
  mutable uy : float array;
  mutable uz : float array;
  mutable w : float array;
}

let create ?(initial_capacity = 1024) ~name ~q ~m grid =
  assert (m > 0. && initial_capacity > 0);
  { name;
    q;
    m;
    grid;
    np = 0;
    cap = initial_capacity;
    ci = Array.make initial_capacity 0;
    cj = Array.make initial_capacity 0;
    ck = Array.make initial_capacity 0;
    fx = Array.make initial_capacity 0.;
    fy = Array.make initial_capacity 0.;
    fz = Array.make initial_capacity 0.;
    ux = Array.make initial_capacity 0.;
    uy = Array.make initial_capacity 0.;
    uz = Array.make initial_capacity 0.;
    w = Array.make initial_capacity 0. }

let count s = s.np

let grow_int a cap = Array.append a (Array.make cap 0)
let grow_float a cap = Array.append a (Array.make cap 0.)

let reserve s n =
  if s.np + n > s.cap then begin
    let cap' = max (s.np + n) (2 * s.cap) in
    let extra = cap' - s.cap in
    s.ci <- grow_int s.ci extra;
    s.cj <- grow_int s.cj extra;
    s.ck <- grow_int s.ck extra;
    s.fx <- grow_float s.fx extra;
    s.fy <- grow_float s.fy extra;
    s.fz <- grow_float s.fz extra;
    s.ux <- grow_float s.ux extra;
    s.uy <- grow_float s.uy extra;
    s.uz <- grow_float s.uz extra;
    s.w <- grow_float s.w extra;
    s.cap <- cap'
  end

let append s (p : Particle.t) =
  reserve s 1;
  let n = s.np in
  s.ci.(n) <- p.i;
  s.cj.(n) <- p.j;
  s.ck.(n) <- p.k;
  s.fx.(n) <- p.fx;
  s.fy.(n) <- p.fy;
  s.fz.(n) <- p.fz;
  s.ux.(n) <- p.ux;
  s.uy.(n) <- p.uy;
  s.uz.(n) <- p.uz;
  s.w.(n) <- p.w;
  s.np <- n + 1

let get s n : Particle.t =
  assert (n >= 0 && n < s.np);
  { i = s.ci.(n);
    j = s.cj.(n);
    k = s.ck.(n);
    fx = s.fx.(n);
    fy = s.fy.(n);
    fz = s.fz.(n);
    ux = s.ux.(n);
    uy = s.uy.(n);
    uz = s.uz.(n);
    w = s.w.(n) }

let set s n (p : Particle.t) =
  assert (n >= 0 && n < s.np);
  s.ci.(n) <- p.i;
  s.cj.(n) <- p.j;
  s.ck.(n) <- p.k;
  s.fx.(n) <- p.fx;
  s.fy.(n) <- p.fy;
  s.fz.(n) <- p.fz;
  s.ux.(n) <- p.ux;
  s.uy.(n) <- p.uy;
  s.uz.(n) <- p.uz;
  s.w.(n) <- p.w

let remove s n =
  assert (n >= 0 && n < s.np);
  let last = s.np - 1 in
  if n <> last then set s n (get s last);
  s.np <- last

let clear s = s.np <- 0

let iter s f =
  for n = 0 to s.np - 1 do
    f n
  done

let to_list s = List.init s.np (get s)

let extract_if s pred =
  (* Scan backwards so swap-removal never disturbs unvisited slots. *)
  let out = ref [] in
  for n = s.np - 1 downto 0 do
    if pred n then begin
      out := get s n :: !out;
      remove s n
    end
  done;
  !out

let total_charge s =
  let acc = ref 0. in
  for n = 0 to s.np - 1 do
    acc := !acc +. s.w.(n)
  done;
  s.q *. !acc

let kinetic_energy s =
  let acc = ref 0. in
  for n = 0 to s.np - 1 do
    let u2 =
      (s.ux.(n) *. s.ux.(n)) +. (s.uy.(n) *. s.uy.(n)) +. (s.uz.(n) *. s.uz.(n))
    in
    (* (gamma - 1) computed stably for small u via u^2/(gamma+1). *)
    let gamma = sqrt (1. +. u2) in
    acc := !acc +. (s.w.(n) *. (u2 /. (gamma +. 1.)))
  done;
  s.m *. !acc

let momentum s =
  let px = ref 0. and py = ref 0. and pz = ref 0. in
  for n = 0 to s.np - 1 do
    px := !px +. (s.w.(n) *. s.ux.(n));
    py := !py +. (s.w.(n) *. s.uy.(n));
    pz := !pz +. (s.w.(n) *. s.uz.(n))
  done;
  Vpic_util.Vec3.make (s.m *. !px) (s.m *. !py) (s.m *. !pz)

let in_ghost s n =
  let g = s.grid in
  not (Grid.is_interior g s.ci.(n) s.cj.(n) s.ck.(n))
