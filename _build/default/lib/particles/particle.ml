module Grid = Vpic_grid.Grid

type t = {
  i : int;
  j : int;
  k : int;
  fx : float;
  fy : float;
  fz : float;
  ux : float;
  uy : float;
  uz : float;
  w : float;
}

let gamma p =
  sqrt (1. +. (p.ux *. p.ux) +. (p.uy *. p.uy) +. (p.uz *. p.uz))

let velocity p =
  let g = gamma p in
  Vpic_util.Vec3.make (p.ux /. g) (p.uy /. g) (p.uz /. g)

let position g p =
  let x0, y0, z0 = Grid.cell_origin g p.i p.j p.k in
  ( x0 +. (p.fx *. g.Grid.dx),
    y0 +. (p.fy *. g.Grid.dy),
    z0 +. (p.fz *. g.Grid.dz) )

let at g ~x ~y ~z ~ux ~uy ~uz ~w =
  let (i, j, k), (fx, fy, fz) = Grid.locate g x y z in
  { i; j; k; fx; fy; fz; ux; uy; uz; w }

let pp ppf p =
  Format.fprintf ppf "cell(%d,%d,%d)+(%.3f,%.3f,%.3f) u=(%g,%g,%g) w=%g" p.i
    p.j p.k p.fx p.fy p.fz p.ux p.uy p.uz p.w
