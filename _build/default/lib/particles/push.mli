(** The PIC inner loop (VPIC's hot kernel): for every particle of a
    species, gather E and B, apply the relativistic Boris rotation, move
    the particle — splitting its trajectory at every cell-face crossing —
    and scatter charge-conserving Villasenor–Buneman currents into the
    field's J accumulators.

    Boundary handling during the move:
    - [Periodic] faces wrap the particle;
    - [Conducting] faces reflect it (specularly);
    - [Absorbing] faces delete it (currents up to the wall are kept);
    - [Refluxing uth] faces re-emit it from a thermal bath at the wall
      (flux-weighted normal momentum, Maxwellian tangentials; requires
      [rng]); the remainder of the step is forfeited;
    - [Domain] faces stop the walk {e at the face}: the particle becomes a
      {!mover} — removed from the species, carrying its remaining
      displacement — to be shipped by [Vpic_parallel.Migrate] and finished
      on the neighbouring rank with {!finish_movers}.  (This is VPIC's
      scheme; it also guarantees deposition never reaches past the single
      ghost layer.)

    Requires valid EM ghosts (both sides) before the call.  Currents are
    deposited into interior and first-ghost-layer slots; fold them {e
    after} migration completes (the neighbour's finished movers deposit
    into its ghost slots too).

    Stability: per-axis displacement must stay below one cell per step,
    guaranteed by the Courant limit since |v| < c = 1. *)

(** Analytic flop counts for the perf ledger. *)
val flops_per_push : float
(** Boris + move, excluding gather and deposition. *)

val flops_per_segment : float
(** one Villasenor–Buneman segment deposition *)

(** A particle stopped at a [Domain] face: position sits in the first
    ghost layer at the entry face, with the unconsumed displacement in
    cell units. *)
type mover = {
  mi : int;
  mj : int;
  mk : int;
  mfx : float;
  mfy : float;
  mfz : float;
  mux : float;
  muy : float;
  muz : float;
  mw : float;
  mrx : float;  (** remaining displacement, cell units *)
  mry : float;
  mrz : float;
}

(** Momentum-update kernel selection (see the kernel docs below). *)
type kind = Boris | Vay | Higuera_cary

type stats = {
  advanced : int;   (** particles pushed *)
  segments : int;   (** deposition segments (>= advanced) *)
  absorbed : int;   (** deleted at absorbing walls *)
  reflected : int;  (** specular reflections at conducting walls *)
  refluxed : int;   (** re-emitted thermally at refluxing walls *)
  outbound : int;   (** became movers (removed, waiting to migrate) *)
}

(** [advance ?first ?count ?movers species fields bc] pushes the whole
    species by default, or the index block [first, first+count) — the
    interface the simulated SPE pipeline streams blocks through (block
    mode must not delete particles: no absorbing or domain faces there).
    Outbound particles are appended to [movers]; raises
    [Invalid_argument] if a domain face is crossed with no [movers]
    buffer. *)
val advance :
  ?perf:Vpic_util.Perf.counters ->
  ?first:int ->
  ?count:int ->
  ?movers:mover list ref ->
  ?gather_from:Vpic_field.Em_field.t ->
  ?rng:Vpic_util.Rng.t ->
  ?pusher:kind ->
  Species.t ->
  Vpic_field.Em_field.t ->
  Vpic_grid.Bc.t ->
  stats
(** [gather_from] (default: the scatter field itself) supplies the E and B
    the particles feel — used with binomially smoothed interpolation
    fields so that force smoothing matches current smoothing (the
    symmetric kernel makes the coupling energy-consistent). *)

(** Complete the moves of movers arriving from a neighbouring rank (cell
    indices already rebased to this rank, interior at the entry face).
    Settled particles are appended to the species; movers that stop at a
    further domain face go to [movers_out]; absorbed ones are dropped.
    Returns (settled, absorbed, re-emitted). *)
val finish_movers :
  ?perf:Vpic_util.Perf.counters ->
  ?movers_out:mover list ref ->
  ?rng:Vpic_util.Rng.t ->
  Species.t ->
  Vpic_field.Em_field.t ->
  Vpic_grid.Bc.t ->
  mover list ->
  int * int * int

(** {1 Momentum-update kernels}

    All three update (ux,uy,uz) in [u] (length 3) in place given the local
    fields and the half-step coefficient qdt_2m = q dt / 2m.
    [boris] is VPIC's pusher (volume-preserving rotation); [vay] (2008)
    and [higuera_cary] (2017) additionally preserve the relativistic
    E x B drift velocity exactly at any time step. *)

val kind_to_string : kind -> string

val boris :
  u:float array ->
  ex:float -> ey:float -> ez:float ->
  bx:float -> by:float -> bz:float ->
  qdt_2m:float ->
  unit

val vay :
  u:float array ->
  ex:float -> ey:float -> ez:float ->
  bx:float -> by:float -> bz:float ->
  qdt_2m:float ->
  unit

val higuera_cary :
  u:float array ->
  ex:float -> ey:float -> ez:float ->
  bx:float -> by:float -> bz:float ->
  qdt_2m:float ->
  unit
