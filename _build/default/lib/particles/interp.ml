module Grid = Vpic_grid.Grid
module Sf = Vpic_grid.Scalar_field

(* 6 components x (8 loads, 7 fma-ish ops) + weight setup. *)
let flops_per_gather = 126.

(* Trilinear sum of the 8 voxels at base [v] with axis strides 1, gx, gxy
   and fractional weights (tx,ty,tz). *)
let tri (a : Sf.data) v gx gxy tx ty tz =
  let open Bigarray.Array1 in
  let sx0 = 1. -. tx and sy0 = 1. -. ty and sz0 = 1. -. tz in
  let c00 = (sx0 *. unsafe_get a v) +. (tx *. unsafe_get a (v + 1)) in
  let c10 =
    (sx0 *. unsafe_get a (v + gx)) +. (tx *. unsafe_get a (v + gx + 1))
  in
  let c01 =
    (sx0 *. unsafe_get a (v + gxy)) +. (tx *. unsafe_get a (v + gxy + 1))
  in
  let c11 =
    (sx0 *. unsafe_get a (v + gxy + gx))
    +. (tx *. unsafe_get a (v + gxy + gx + 1))
  in
  (sz0 *. ((sy0 *. c00) +. (ty *. c10))) +. (tz *. ((sy0 *. c01) +. (ty *. c11)))

(* Staggered axes sample at half-integer positions: shift the base cell
   down when the particle sits in the lower half of its cell. *)

let gather_into f ~i ~j ~k ~fx ~fy ~fz ~out =
  let g = f.Vpic_field.Em_field.grid in
  let gx = g.Grid.gx in
  let gxy = g.Grid.gx * g.Grid.gy in
  let v = Grid.voxel g i j k in
  let dxs = if fx >= 0.5 then 0 else -1 in
  let txs = if fx >= 0.5 then fx -. 0.5 else fx +. 0.5 in
  let dys = if fy >= 0.5 then 0 else -1 in
  let tys = if fy >= 0.5 then fy -. 0.5 else fy +. 0.5 in
  let dzs = if fz >= 0.5 then 0 else -1 in
  let tzs = if fz >= 0.5 then fz -. 0.5 else fz +. 0.5 in
  let oy = gx * dys and oz = gxy * dzs in
  (* ex: staggered x *)
  out.(0) <- tri (Sf.data f.Vpic_field.Em_field.ex) (v + dxs) gx gxy txs fy fz;
  (* ey: staggered y *)
  out.(1) <- tri (Sf.data f.Vpic_field.Em_field.ey) (v + oy) gx gxy fx tys fz;
  (* ez: staggered z *)
  out.(2) <- tri (Sf.data f.Vpic_field.Em_field.ez) (v + oz) gx gxy fx fy tzs;
  (* bx: staggered y,z *)
  out.(3) <- tri (Sf.data f.Vpic_field.Em_field.bx) (v + oy + oz) gx gxy fx tys tzs;
  (* by: staggered x,z *)
  out.(4) <- tri (Sf.data f.Vpic_field.Em_field.by) (v + dxs + oz) gx gxy txs fy tzs;
  (* bz: staggered x,y *)
  out.(5) <- tri (Sf.data f.Vpic_field.Em_field.bz) (v + dxs + oy) gx gxy txs tys fz

let gather f ~i ~j ~k ~fx ~fy ~fz =
  let out = Array.make 6 0. in
  gather_into f ~i ~j ~k ~fx ~fy ~fz ~out;
  (out.(0), out.(1), out.(2), out.(3), out.(4), out.(5))
