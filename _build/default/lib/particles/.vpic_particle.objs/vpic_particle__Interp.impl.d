lib/particles/interp.ml: Array Bigarray Vpic_field Vpic_grid
