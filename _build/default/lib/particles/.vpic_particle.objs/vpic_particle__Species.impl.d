lib/particles/species.ml: Array List Particle Vpic_grid Vpic_util
