lib/particles/sort.mli: Species Vpic_util
