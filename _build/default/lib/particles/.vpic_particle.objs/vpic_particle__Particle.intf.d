lib/particles/particle.mli: Format Vpic_grid Vpic_util
