lib/particles/particle.ml: Format Vpic_grid Vpic_util
