lib/particles/species.mli: Particle Vpic_grid Vpic_util
