lib/particles/loader.ml: Float Particle Species Vpic_grid Vpic_util
