lib/particles/push.mli: Species Vpic_field Vpic_grid Vpic_util
