lib/particles/loader.mli: Species Vpic_util
