lib/particles/push.ml: Array Bigarray Float Interp List Species Vpic_field Vpic_grid Vpic_util
