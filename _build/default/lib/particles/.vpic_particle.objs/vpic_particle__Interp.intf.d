lib/particles/interp.mli: Vpic_field
