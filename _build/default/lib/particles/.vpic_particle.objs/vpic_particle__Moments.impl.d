lib/particles/moments.ml: Array Bigarray Float Species Vpic_grid Vpic_util
