lib/particles/moments.mli: Species Vpic_grid Vpic_util
