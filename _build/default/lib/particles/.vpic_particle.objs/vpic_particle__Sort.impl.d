lib/particles/sort.ml: Array Species Vpic_grid Vpic_util
