(** Particle loading: fill a species with macro-particles sampling a
    prescribed density and (possibly drifting) Maxwellian momentum
    distribution.

    Densities are in units of the reference density (n = 1 gives
    omega_pe = 1 in normalised units).  Each cell receives [ppc]
    particles of weight n(x) dV / ppc, so weights track the local
    density. *)

type profile = x:float -> y:float -> z:float -> float

val uniform_profile : float -> profile

(** Linear ramp of density along x between (x_lo, n_lo) and (x_hi, n_hi),
    clamped outside. *)
val linear_ramp_x : x_lo:float -> n_lo:float -> x_hi:float -> n_hi:float -> profile

(** [maxwellian rng species ~ppc ~uth ?drift ?density ()] loads [ppc]
    particles per interior cell at uniformly random in-cell positions with
    normal momentum spread [uth] per axis (u units, = v_th/c for
    non-relativistic temperatures) around [drift] (default zero).
    [density] defaults to uniform 1.  Cells where the profile is <= 0 get
    no particles.  Returns the number of particles loaded. *)
val maxwellian :
  Vpic_util.Rng.t ->
  Species.t ->
  ppc:int ->
  uth:float ->
  ?drift:Vpic_util.Vec3.t ->
  ?density:profile ->
  unit ->
  int

(** Two counter-streaming cold beams along x (the classic two-stream
    setup): half the particles drift at +u0, half at -u0, with optional
    small thermal spread.  Returns particles loaded. *)
val two_stream :
  Vpic_util.Rng.t ->
  Species.t ->
  ppc:int ->
  u0:float ->
  ?uth:float ->
  ?density:float ->
  unit ->
  int

(** A sinusoidal density perturbation n(x) = n0 (1 + amp cos(2 pi m x/Lx))
    useful for exciting Langmuir oscillations. *)
val cosine_perturbation_x :
  n0:float -> amplitude:float -> mode:int -> lx:float -> profile
