module Grid = Vpic_grid.Grid
module Perf = Vpic_util.Perf

let voxel_of (s : Species.t) n =
  Grid.voxel s.Species.grid s.Species.ci.(n) s.Species.cj.(n) s.Species.ck.(n)

let by_voxel ?(perf = Perf.global) (s : Species.t) =
  let np = Species.count s in
  if np > 1 then begin
    let nv = s.Species.grid.Grid.nv in
    let counts = Array.make (nv + 1) 0 in
    for n = 0 to np - 1 do
      let v = voxel_of s n in
      counts.(v + 1) <- counts.(v + 1) + 1
    done;
    for v = 1 to nv do
      counts.(v) <- counts.(v) + counts.(v - 1)
    done;
    let permute_float (a : float array) =
      let out = Array.make np 0. in
      let offs = Array.copy counts in
      for n = 0 to np - 1 do
        let v = voxel_of s n in
        out.(offs.(v)) <- a.(n);
        offs.(v) <- offs.(v) + 1
      done;
      out
    in
    let permute_int (a : int array) =
      let out = Array.make np 0 in
      let offs = Array.copy counts in
      for n = 0 to np - 1 do
        let v = voxel_of s n in
        out.(offs.(v)) <- a.(n);
        offs.(v) <- offs.(v) + 1
      done;
      out
    in
    (* Permute position-independent attributes first, then the cell
       indices themselves (which define the permutation). *)
    let fx = permute_float s.Species.fx in
    let fy = permute_float s.Species.fy in
    let fz = permute_float s.Species.fz in
    let ux = permute_float s.Species.ux in
    let uy = permute_float s.Species.uy in
    let uz = permute_float s.Species.uz in
    let w = permute_float s.Species.w in
    let ci = permute_int s.Species.ci in
    let cj = permute_int s.Species.cj in
    let ck = permute_int s.Species.ck in
    s.Species.fx <- fx;
    s.Species.fy <- fy;
    s.Species.fz <- fz;
    s.Species.ux <- ux;
    s.Species.uy <- uy;
    s.Species.uz <- uz;
    s.Species.w <- w;
    s.Species.ci <- ci;
    s.Species.cj <- cj;
    s.Species.ck <- ck;
    s.Species.cap <- np;
    Perf.add_bytes perf (float_of_int np *. 80. *. 2.)
  end

let is_sorted s =
  let np = Species.count s in
  let rec check n = n >= np || (voxel_of s (n - 1) <= voxel_of s n && check (n + 1)) in
  check 1

let locality_score s =
  let np = Species.count s in
  if np < 2 then 1.
  else begin
    let near = ref 0 in
    for n = 1 to np - 1 do
      if abs (voxel_of s n - voxel_of s (n - 1)) <= 1 then incr near
    done;
    float_of_int !near /. float_of_int (np - 1)
  end
