(** A particle species: SoA storage (separate unboxed float arrays per
    attribute, VPIC layout) plus charge/mass in normalised units
    (electrons: q = -1, m = 1). *)

type t = {
  name : string;
  q : float;
  m : float;
  grid : Vpic_grid.Grid.t;
  mutable np : int;
  mutable cap : int;
  mutable ci : int array;  (** owning cell index along x *)
  mutable cj : int array;
  mutable ck : int array;
  mutable fx : float array;  (** in-cell offsets, [0,1) *)
  mutable fy : float array;
  mutable fz : float array;
  mutable ux : float array;  (** gamma v / c *)
  mutable uy : float array;
  mutable uz : float array;
  mutable w : float array;
}

val create :
  ?initial_capacity:int ->
  name:string -> q:float -> m:float -> Vpic_grid.Grid.t -> t

val count : t -> int

(** Ensure room for [n] more particles (amortised doubling). *)
val reserve : t -> int -> unit

val append : t -> Particle.t -> unit
val get : t -> int -> Particle.t
val set : t -> int -> Particle.t -> unit

(** Remove particle [n] by swapping in the last one (O(1); order changes). *)
val remove : t -> int -> unit

val clear : t -> unit
val iter : t -> (int -> unit) -> unit
val to_list : t -> Particle.t list

(** Remove and return every particle satisfying [pred] (by index). *)
val extract_if : t -> (int -> bool) -> Particle.t list

(** Total charge q * sum w. *)
val total_charge : t -> float

(** Total kinetic energy sum w m (gamma - 1), normalised units. *)
val kinetic_energy : t -> float

(** Total momentum sum w m u. *)
val momentum : t -> Vpic_util.Vec3.t

(** True when particle [n] sits in a ghost cell (outbound after a push). *)
val in_ghost : t -> int -> bool
