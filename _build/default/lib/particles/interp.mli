(** Field gather: staggered (Yee-aware) trilinear interpolation of E and B
    to a particle position.  Requires all EM ghosts valid (both sides).

    Slots of [out] after {!gather_into}: ex ey ez bx by bz. *)

val flops_per_gather : float

(** [gather_into f ~i ~j ~k ~fx ~fy ~fz ~out] writes the six interpolated
    components into [out] (length >= 6) without allocating. *)
val gather_into :
  Vpic_field.Em_field.t ->
  i:int -> j:int -> k:int ->
  fx:float -> fy:float -> fz:float ->
  out:float array ->
  unit

(** Allocating convenience wrapper for tests. *)
val gather :
  Vpic_field.Em_field.t ->
  i:int -> j:int -> k:int ->
  fx:float -> fy:float -> fz:float ->
  float * float * float * float * float * float
