type t = {
  px : int;
  py : int;
  pz : int;
  gnx : int;
  gny : int;
  gnz : int;
  lx : float;
  ly : float;
  lz : float;
}

let make ~px ~py ~pz ~gnx ~gny ~gnz ~lx ~ly ~lz =
  let check p g name =
    if p < 1 then invalid_arg (Printf.sprintf "Decomp.make: p%s < 1" name);
    if g mod p <> 0 then
      invalid_arg
        (Printf.sprintf "Decomp.make: p%s=%d does not divide gn%s=%d" name p
           name g)
  in
  check px gnx "x";
  check py gny "y";
  check pz gnz "z";
  { px; py; pz; gnx; gny; gnz; lx; ly; lz }

let size t = t.px * t.py * t.pz

let coords_of_rank t r =
  assert (r >= 0 && r < size t);
  (r mod t.px, r / t.px mod t.py, r / (t.px * t.py))

let rank_of_coords t cx cy cz =
  let wrap c p = ((c mod p) + p) mod p in
  let cx = wrap cx t.px and cy = wrap cy t.py and cz = wrap cz t.pz in
  cx + (t.px * (cy + (t.py * cz)))

let step side = match side with `Lo -> -1 | `Hi -> 1

let neighbor t ~rank ~axis ~side =
  let cx, cy, cz = coords_of_rank t rank in
  let d = step side in
  match axis with
  | Axis.X -> rank_of_coords t (cx + d) cy cz
  | Axis.Y -> rank_of_coords t cx (cy + d) cz
  | Axis.Z -> rank_of_coords t cx cy (cz + d)

let neighbor_wraps t ~rank ~axis ~side =
  let cx, cy, cz = coords_of_rank t rank in
  let at_edge c p = match side with `Lo -> c = 0 | `Hi -> c = p - 1 in
  match axis with
  | Axis.X -> at_edge cx t.px
  | Axis.Y -> at_edge cy t.py
  | Axis.Z -> at_edge cz t.pz

let local_dims t = (t.gnx / t.px, t.gny / t.py, t.gnz / t.pz)

let local_grid t ~dt ~rank =
  let nx, ny, nz = local_dims t in
  let cx, cy, cz = coords_of_rank t rank in
  let llx = t.lx /. float_of_int t.px in
  let lly = t.ly /. float_of_int t.py in
  let llz = t.lz /. float_of_int t.pz in
  Grid.make ~nx ~ny ~nz ~lx:llx ~ly:lly ~lz:llz ~dt
    ~x0:(float_of_int cx *. llx)
    ~y0:(float_of_int cy *. lly)
    ~z0:(float_of_int cz *. llz)
    ()

let local_bc t ~global ~rank =
  let face axis side =
    let p =
      match axis with Axis.X -> t.px | Axis.Y -> t.py | Axis.Z -> t.pz
    in
    let at_global_edge = neighbor_wraps t ~rank ~axis ~side in
    let global_kind = Bc.face global axis side in
    if p = 1 then global_kind
    else if at_global_edge && global_kind <> Bc.Periodic then global_kind
    else Bc.Domain (neighbor t ~rank ~axis ~side)
  in
  { Bc.xlo = face Axis.X `Lo;
    xhi = face Axis.X `Hi;
    ylo = face Axis.Y `Lo;
    yhi = face Axis.Y `Hi;
    zlo = face Axis.Z `Lo;
    zhi = face Axis.Z `Hi }

let global_extent t = (t.lx, t.ly, t.lz)
