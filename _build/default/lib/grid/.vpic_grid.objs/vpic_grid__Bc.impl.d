lib/grid/bc.ml: Axis Printf
