lib/grid/decomp.ml: Axis Bc Grid Printf
