lib/grid/scalar_field.mli: Axis Bigarray Grid
