lib/grid/axis.ml:
