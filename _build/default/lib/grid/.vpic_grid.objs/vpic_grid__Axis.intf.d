lib/grid/axis.mli:
