lib/grid/bc.mli: Axis
