lib/grid/grid.ml: Float Format
