lib/grid/decomp.mli: Axis Bc Grid
