lib/grid/grid.mli: Format
