lib/grid/scalar_field.ml: Array Axis Bigarray Float Grid
