type t = {
  nx : int;
  ny : int;
  nz : int;
  dx : float;
  dy : float;
  dz : float;
  dt : float;
  x0 : float;
  y0 : float;
  z0 : float;
  gx : int;
  gy : int;
  gz : int;
  nv : int;
}

let make ~nx ~ny ~nz ~lx ~ly ~lz ~dt ?(x0 = 0.) ?(y0 = 0.) ?(z0 = 0.) () =
  assert (nx >= 1 && ny >= 1 && nz >= 1);
  assert (lx > 0. && ly > 0. && lz > 0. && dt > 0.);
  let gx = nx + 2 and gy = ny + 2 and gz = nz + 2 in
  { nx;
    ny;
    nz;
    dx = lx /. float_of_int nx;
    dy = ly /. float_of_int ny;
    dz = lz /. float_of_int nz;
    dt;
    x0;
    y0;
    z0;
    gx;
    gy;
    gz;
    nv = gx * gy * gz }

let courant_dt ?(safety = 0.95) ~dx ~dy ~dz () =
  safety /. sqrt ((1. /. (dx *. dx)) +. (1. /. (dy *. dy)) +. (1. /. (dz *. dz)))

let voxel g i j k = i + (g.gx * (j + (g.gy * k)))

let cell_of_voxel g v =
  let i = v mod g.gx in
  let r = v / g.gx in
  (i, r mod g.gy, r / g.gy)

let is_interior g i j k =
  i >= 1 && i <= g.nx && j >= 1 && j <= g.ny && k >= 1 && k <= g.nz

let cell_origin g i j k =
  ( g.x0 +. (float_of_int (i - 1) *. g.dx),
    g.y0 +. (float_of_int (j - 1) *. g.dy),
    g.z0 +. (float_of_int (k - 1) *. g.dz) )

let locate g x y z =
  let axis pos p0 d n =
    let u = (pos -. p0) /. d in
    let c = int_of_float (Float.floor u) in
    let c = if c < 0 then 0 else if c > n - 1 then n - 1 else c in
    let frac = u -. float_of_int c in
    let frac = if frac < 0. then 0. else if frac >= 1. then Float.pred 1. else frac in
    (c + 1, frac)
  in
  let i, fx = axis x g.x0 g.dx g.nx in
  let j, fy = axis y g.y0 g.dy g.ny in
  let k, fz = axis z g.z0 g.dz g.nz in
  ((i, j, k), (fx, fy, fz))

let iter_interior g f =
  for k = 1 to g.nz do
    for j = 1 to g.ny do
      for i = 1 to g.nx do
        f i j k
      done
    done
  done

let interior_count g = g.nx * g.ny * g.nz

let extent g =
  ( float_of_int g.nx *. g.dx,
    float_of_int g.ny *. g.dy,
    float_of_int g.nz *. g.dz )

let cell_volume g = g.dx *. g.dy *. g.dz
let volume g = cell_volume g *. float_of_int (interior_count g)

let pp ppf g =
  Format.fprintf ppf "grid %dx%dx%d d=(%g,%g,%g) dt=%g origin=(%g,%g,%g)"
    g.nx g.ny g.nz g.dx g.dy g.dz g.dt g.x0 g.y0 g.z0
