(** Boundary-condition descriptors for the six faces of the local box.

    [Periodic] wraps fields and particles; [Conducting] is a perfect
    electric conductor (tangential E = 0, reflecting particles);
    [Absorbing] damps outgoing fields in a boundary layer and removes
    particles that leave; [Refluxing uth] absorbs fields like [Absorbing]
    but re-emits each departing particle from the wall as if from a
    thermal bath of momentum spread [uth] (VPIC's maxwellian reflux);
    [Domain r] marks an internal face shared with neighbouring rank [r]
    (handled by the parallel exchange). *)

type kind =
  | Periodic
  | Conducting
  | Absorbing
  | Refluxing of float
  | Domain of int

type t = {
  xlo : kind;
  xhi : kind;
  ylo : kind;
  yhi : kind;
  zlo : kind;
  zhi : kind;
}

val periodic : t
val uniform : kind -> t

(** Face lookup by axis/side. *)
val face : t -> Axis.t -> [ `Lo | `Hi ] -> kind

(** Functional face update. *)
val with_face : t -> Axis.t -> [ `Lo | `Hi ] -> kind -> t

val kind_to_string : kind -> string
