type kind =
  | Periodic
  | Conducting
  | Absorbing
  | Refluxing of float
  | Domain of int

type t = {
  xlo : kind;
  xhi : kind;
  ylo : kind;
  yhi : kind;
  zlo : kind;
  zhi : kind;
}

let uniform k = { xlo = k; xhi = k; ylo = k; yhi = k; zlo = k; zhi = k }
let periodic = uniform Periodic

let face t axis side =
  match (axis, side) with
  | Axis.X, `Lo -> t.xlo
  | Axis.X, `Hi -> t.xhi
  | Axis.Y, `Lo -> t.ylo
  | Axis.Y, `Hi -> t.yhi
  | Axis.Z, `Lo -> t.zlo
  | Axis.Z, `Hi -> t.zhi

let with_face t axis side k =
  match (axis, side) with
  | Axis.X, `Lo -> { t with xlo = k }
  | Axis.X, `Hi -> { t with xhi = k }
  | Axis.Y, `Lo -> { t with ylo = k }
  | Axis.Y, `Hi -> { t with yhi = k }
  | Axis.Z, `Lo -> { t with zlo = k }
  | Axis.Z, `Hi -> { t with zhi = k }

let kind_to_string = function
  | Periodic -> "periodic"
  | Conducting -> "conducting"
  | Absorbing -> "absorbing"
  | Refluxing uth -> Printf.sprintf "refluxing(%g)" uth
  | Domain r -> Printf.sprintf "domain(%d)" r
