(** Yee-grid geometry and voxel indexing.

    A grid covers a box of [nx * ny * nz] interior cells plus one ghost
    layer on every side.  Local cell indices run 1..n on each axis
    (0 and n+1 are ghosts), matching VPIC's VOXEL convention.  All grid
    quantities are stored flat, indexed by {!voxel}. *)

type t = private {
  nx : int;  (** interior cells along x *)
  ny : int;
  nz : int;
  dx : float;  (** cell size (normalised units, c/omega_pe) *)
  dy : float;
  dz : float;
  dt : float;  (** time step (1/omega_pe) *)
  x0 : float;  (** coordinate of the low-x interior face *)
  y0 : float;
  z0 : float;
  gx : int;  (** allocated extent along x = nx+2 *)
  gy : int;
  gz : int;
  nv : int;  (** total allocated voxels = gx*gy*gz *)
}

(** [make ~nx ~ny ~nz ~lx ~ly ~lz ~dt ()] builds a grid over a box of
    physical size lx*ly*lz with origin (0,0,0) unless overridden. *)
val make :
  nx:int ->
  ny:int ->
  nz:int ->
  lx:float ->
  ly:float ->
  lz:float ->
  dt:float ->
  ?x0:float ->
  ?y0:float ->
  ?z0:float ->
  unit ->
  t

(** Largest stable FDTD time step times [safety] (default 0.95):
    dt < 1/sqrt(dx^-2 + dy^-2 + dz^-2) with c = 1. *)
val courant_dt :
  ?safety:float -> dx:float -> dy:float -> dz:float -> unit -> float

(** Flat index of cell (i,j,k); i in [0, nx+1] etc. *)
val voxel : t -> int -> int -> int -> int

(** Inverse of {!voxel}. *)
val cell_of_voxel : t -> int -> int * int * int

(** True when (i,j,k) is an interior (non-ghost) cell. *)
val is_interior : t -> int -> int -> int -> bool

(** Physical coordinate of the low corner of interior cell (i,j,k). *)
val cell_origin : t -> int -> int -> int -> float * float * float

(** Locate a physical point: interior cell indices and in-cell fractions in
    [0,1).  Points outside the interior are clamped to the nearest interior
    cell. *)
val locate : t -> float -> float -> float -> (int * int * int) * (float * float * float)

(** Iterate f i j k over all interior cells, x fastest. *)
val iter_interior : t -> (int -> int -> int -> unit) -> unit

(** Number of interior cells. *)
val interior_count : t -> int

(** Physical box extents (interior). *)
val extent : t -> float * float * float

val cell_volume : t -> float

(** Total interior volume. *)
val volume : t -> float

val pp : Format.formatter -> t -> unit
