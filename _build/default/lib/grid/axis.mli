(** Coordinate axes, shared by plane extraction, boundary conditions and
    the domain-decomposition exchange. *)

type t = X | Y | Z

val all : t list
val to_string : t -> string
val index : t -> int
