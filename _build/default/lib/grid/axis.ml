type t = X | Y | Z

let all = [ X; Y; Z ]
let to_string = function X -> "x" | Y -> "y" | Z -> "z"
let index = function X -> 0 | Y -> 1 | Z -> 2
