(* Quickstart: a cold Langmuir oscillation in a periodic box.

   Loads electrons with a small sinusoidal velocity perturbation and shows
   the field/kinetic energy exchange oscillating at the plasma frequency —
   the "hello world" of PIC.  Run with:

     dune exec examples/quickstart.exe
*)

module Grid = Vpic_grid.Grid
module Bc = Vpic_grid.Bc
module Sf = Vpic_grid.Scalar_field
module Simulation = Vpic.Simulation
module Coupler = Vpic.Coupler
module Loader = Vpic_particle.Loader
module Species = Vpic_particle.Species
module Particle = Vpic_particle.Particle
module Rng = Vpic_util.Rng
module Table = Vpic_util.Table

let () =
  (* 1. A quasi-1D periodic box, one wavelength long. *)
  let nx = 32 in
  let lx = 2. *. Float.pi in
  let dx = lx /. float_of_int nx in
  let dt = Grid.courant_dt ~dx ~dy:0.5 ~dz:0.5 () in
  let grid = Grid.make ~nx ~ny:2 ~nz:2 ~lx ~ly:1. ~lz:1. ~dt () in
  let sim =
    Simulation.make ~grid ~coupler:(Coupler.local Bc.periodic)
      ~clean_div_interval:0 ()
  in

  (* 2. Electrons at the reference density (omega_pe = 1), with a gentle
     velocity perturbation at mode 1 to start the oscillation. *)
  let electrons = Simulation.add_species sim ~name:"electron" ~q:(-1.) ~m:1. in
  let loaded =
    Loader.maxwellian (Rng.of_int 1) electrons ~ppc:64 ~uth:1e-4 ()
  in
  Printf.printf "loaded %d electrons on %s\n" loaded
    (Format.asprintf "%a" Grid.pp grid);
  let v0 = 0.01 in
  Species.iter electrons (fun n ->
      let p = Species.get electrons n in
      let x, _, _ = Particle.position grid p in
      Species.set electrons n { p with ux = p.Particle.ux +. (v0 *. sin x) });

  (* 3. Step, recording a field probe and the energy budget. *)
  let history = Vpic_diag.History.create [ "field_E"; "field_B"; "kinetic" ] in
  let probe = ref [] in
  let steps = 400 in
  for _ = 1 to steps do
    Simulation.step sim;
    probe := Sf.get sim.Simulation.fields.Vpic_field.Em_field.ex 8 1 1 :: !probe;
    if sim.Simulation.nstep mod 40 = 0 then begin
      let en = Simulation.energies sim in
      Vpic_diag.History.record history ~time:(Simulation.time sim)
        ~values:
          [ en.Simulation.field_e; en.Simulation.field_b;
            List.assoc "electron" en.Simulation.particles ]
    end
  done;

  (* 4. Report: the oscillation frequency must be omega_pe = 1. *)
  let xs = Array.of_list (List.rev !probe) in
  let omega = Vpic_diag.Spectrum.zero_crossing_omega ~dt xs in
  Table.print ~title:"energy history (normalised units)"
    (Vpic_diag.History.to_table history);
  Printf.printf
    "\nmeasured Langmuir frequency: %.4f omega_pe (theory: 1.0000, err %.2f%%)\n"
    omega
    (100. *. Float.abs (omega -. 1.))
