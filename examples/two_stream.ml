(* Two-stream instability: the classic kinetic PIC validation.

   Two cold counter-streaming electron beams are unstable; the fastest
   mode (K = k v0 / omega_pe = sqrt(3/8)) grows at omega_pe / sqrt(8).
   This example seeds that mode, measures its growth rate against theory,
   and shows the saturation by particle trapping.

     dune exec examples/two_stream.exe
*)

module Grid = Vpic_grid.Grid
module Bc = Vpic_grid.Bc
module Sf = Vpic_grid.Scalar_field
module Simulation = Vpic.Simulation
module Coupler = Vpic.Coupler
module Loader = Vpic_particle.Loader
module Species = Vpic_particle.Species
module Particle = Vpic_particle.Particle
module Rng = Vpic_util.Rng
module Table = Vpic_util.Table

let mode_amplitude sim k =
  let f = sim.Simulation.fields in
  let g = sim.Simulation.grid in
  let re = ref 0. and im = ref 0. in
  for i = 1 to g.Grid.nx do
    let x = (float_of_int (i - 1) +. 0.5) *. g.Grid.dx in
    let e = Sf.get f.Vpic_field.Em_field.ex i 1 1 in
    re := !re +. (e *. cos (k *. x));
    im := !im -. (e *. sin (k *. x))
  done;
  sqrt ((!re *. !re) +. (!im *. !im)) /. float_of_int g.Grid.nx

let () =
  let u0 = 0.1 in
  let k = sqrt (3. /. 8.) /. u0 in
  let gamma_theory = 1. /. sqrt 8. in
  let nx = 64 in
  let lx = 2. *. Float.pi /. k in
  let dx = lx /. float_of_int nx in
  let dt = Grid.courant_dt ~dx ~dy:0.5 ~dz:0.5 () in
  let grid = Grid.make ~nx ~ny:2 ~nz:2 ~lx ~ly:1. ~lz:1. ~dt () in
  let sim =
    Simulation.make ~grid ~coupler:(Coupler.local Bc.periodic)
      ~clean_div_interval:0 ~sort_interval:0 ()
  in
  let electrons = Simulation.add_species sim ~name:"electron" ~q:(-1.) ~m:1. in
  ignore (Loader.two_stream (Rng.of_int 9) electrons ~ppc:256 ~u0 ~uth:1e-4 ());
  Printf.printf "two beams: +-%.2f c, fastest mode k = %.3f (K = 0.612)\n" u0 k;

  (* seed the unstable eigenmode: opposite velocity kicks on the beams *)
  let eps = 2e-5 in
  Species.iter electrons (fun n ->
      let p = Species.get electrons n in
      let x, _, _ = Particle.position grid p in
      let sign = if p.Particle.ux > 0. then 1. else -1. in
      Species.set electrons n
        { p with ux = p.Particle.ux +. (sign *. eps *. sin (k *. x)) });

  let table = Table.create [ "t"; "mode amp"; "field E"; "kinetic" ] in
  let times = ref [] and amps = ref [] in
  let steps = int_of_float (18. /. dt) in
  for step = 1 to steps do
    Simulation.step sim;
    times := Simulation.time sim :: !times;
    amps := mode_amplitude sim k :: !amps;
    if step mod (steps / 15) = 0 then begin
      let en = Simulation.energies sim in
      Table.add_row table
        [ Table.cell_f (Simulation.time sim);
          Printf.sprintf "%.3e" (mode_amplitude sim k);
          Printf.sprintf "%.3e" en.Simulation.field_e;
          Table.cell_f (List.assoc "electron" en.Simulation.particles) ]
    end
  done;
  Table.print ~title:"two-stream evolution" table;

  let times = Array.of_list (List.rev !times) in
  let amps = Array.of_list (List.rev !amps) in
  let lo = ref 0 and hi = ref 0 in
  Array.iteri
    (fun i a ->
      if !lo = 0 && a > 5e-4 then lo := i;
      if !hi = 0 && a > 2.2e-3 then hi := i)
    amps;
  let gamma, r2 =
    Vpic_diag.Growth.rate_in_window ~times ~amps ~i_lo:!lo ~i_hi:!hi
  in
  Printf.printf
    "\nmeasured growth rate: %.3f omega_pe  (theory %.3f, err %.0f%%, fit r2=%.3f)\n"
    gamma gamma_theory
    (100. *. Float.abs ((gamma /. gamma_theory) -. 1.))
    r2
