(* A genuinely 3D miniature of the paper's flagship run: a Gaussian laser
   beam driving a hohlraum-fill plasma slab, with refluxing walls keeping
   the plasma in thermal contact with a bath (as a hohlraum wall would).

   The paper's run used 1.36e8 voxels and 1e12 particles on 3060 nodes;
   this is the same physics pipeline at ~3e4 voxels and ~7e5 particles on
   one core — the performance model (examples/weak_scaling.exe) bridges
   the gap.  Reports reflectivity, energy budget, trapping and the
   per-phase wall-clock profile.

     dune exec examples/hohlraum3d.exe
*)

module Grid = Vpic_grid.Grid
module Bc = Vpic_grid.Bc
module Simulation = Vpic.Simulation
module Coupler = Vpic.Coupler
module Laser = Vpic_field.Laser
module Loader = Vpic_particle.Loader
module Species = Vpic_particle.Species
module Rng = Vpic_util.Rng
module Perf = Vpic_util.Perf
module Table = Vpic_util.Table
module Srs_theory = Vpic_lpi.Srs_theory
module Reflectivity = Vpic_lpi.Reflectivity
module Trapping = Vpic_lpi.Trapping
module Trace = Vpic_telemetry.Trace

let () =
  Trace.enable ~rank:0 ();
  let nr = 0.10 and te_kev = 2.5 in
  let uth = sqrt (te_kev /. 510.99895) in
  let plasma = { Srs_theory.nr; uth } in
  let m = Srs_theory.matching plasma in
  (* grid: x is the beam axis; y,z resolve the transverse spot *)
  let nx = 96 and nt = 12 in
  let dx = 0.125 and lt = 6.0 in
  let lx = float_of_int nx *. dx in
  let dt = Grid.courant_dt ~dx ~dy:(lt /. float_of_int nt) ~dz:(lt /. float_of_int nt) () in
  let grid = Grid.make ~nx ~ny:nt ~nz:nt ~lx ~ly:lt ~lz:lt ~dt () in
  let bc =
    { Bc.xlo = Bc.Absorbing;
      xhi = Bc.Refluxing uth;  (* plasma in contact with the far wall *)
      ylo = Bc.Periodic;
      yhi = Bc.Periodic;
      zlo = Bc.Periodic;
      zhi = Bc.Periodic }
  in
  let sim =
    Simulation.make ~grid ~coupler:(Coupler.local bc) ~clean_div_interval:25
      ~absorber_thickness:10 ~absorber_strength:0.6 ()
  in
  (* plasma slab from x = 4 to the far wall, 1 c/omega_pe entrance ramp *)
  let slab ~x ~y:_ ~z:_ =
    if x < 4. then 0. else if x < 5. then x -. 4. else 1.
  in
  let rng = Rng.of_int 2008 in
  let electrons = Simulation.add_species sim ~name:"electron" ~q:(-1.) ~m:1. in
  ignore
    (Loader.maxwellian (Rng.split rng 1) electrons ~ppc:24 ~uth ~density:slab ());
  let ions = Simulation.add_species sim ~name:"ion" ~q:1. ~m:1836. in
  let irng = Rng.split rng 2 in
  Species.iter electrons (fun n ->
      let p = Species.get electrons n in
      let uthi = uth *. sqrt (0.3 /. 1836.) in
      Species.append ions
        { p with
          ux = uthi *. Rng.normal irng;
          uy = uthi *. Rng.normal irng;
          uz = uthi *. Rng.normal irng });
  (* Gaussian beam: waist 1.5 c/omega_pe at the box axis *)
  let a0 = 0.09 in
  let e0 = a0 *. m.Srs_theory.omega0 in
  let waist = 1.5 in
  let transverse y z =
    let r2 = ((y -. 3.) ** 2.) +. ((z -. 3.) ** 2.) in
    exp (-.r2 /. (waist *. waist))
  in
  Simulation.add_laser sim
    (Laser.make ~omega:m.Srs_theory.omega0 ~e0 ~plane_i:13 ~t_rise:12.
       ~transverse ());
  let refl = Reflectivity.create ~plane_i:20 ~e0 () in
  Printf.printf
    "3D hohlraum miniature: %dx%dx%d cells, %d particles, a0=%.2f (%.1e W/cm^2)\n%!"
    nx nt nt
    (Simulation.total_particles sim)
    a0
    (Vpic_lpi.Sweep.intensity_of_a0 a0);
  let steps = int_of_float (60. /. dt) in
  let t0 = Perf.now () in
  for step = 1 to steps do
    Simulation.step sim;
    Reflectivity.sample refl sim.Simulation.fields;
    if step mod (steps / 6) = 0 then begin
      let en = Simulation.energies sim in
      Printf.printf "t=%5.1f  R=%.3e  field=%.3e  kinetic=%.3e\n%!"
        (Simulation.time sim)
        (Reflectivity.reflectivity refl)
        (en.Simulation.field_e +. en.Simulation.field_b)
        (List.fold_left (fun a (_, e) -> a +. e) 0. en.Simulation.particles)
    end
  done;
  let wall = Perf.now () -. t0 in
  let fv = Trapping.distribution electrons in
  Printf.printf "\nreflectivity (pol-resolved, averaged): %.3e | peak %.3e\n"
    (Reflectivity.reflectivity refl)
    (Reflectivity.peak_reflectivity refl);
  Printf.printf "f(v) flattening at v_phase = %.2f; hot (>3Te) = %.2e\n"
    (Trapping.flattening fv ~v_phase:m.Srs_theory.v_phase ~uth ~width:0.05)
    (Trapping.hot_fraction electrons ~threshold_kev:(3. *. te_kev));
  (* performance profile, summed from the step's telemetry spans *)
  let phase_s names =
    List.fold_left
      (fun acc n -> acc +. Trace.phase_seconds (Trace.intern n))
      0. names
  in
  let total = wall in
  let t = Table.create [ "phase"; "seconds"; "%" ] in
  let row name names =
    let v = phase_s names in
    Table.add_row t
      [ name; Printf.sprintf "%.2f" v; Printf.sprintf "%.1f" (100. *. v /. total) ]
  in
  row "particle push" [ "push"; "push.interior"; "push.boundary" ];
  row "field solve" [ "field" ];
  row "ghost exchange"
    [ "exchange.fill_begin"; "exchange.fill_finish"; "exchange.fill";
      "exchange.fold" ];
  row "migration" [ "migrate" ];
  row "sort" [ "sort" ];
  row "divergence clean" [ "clean" ];
  Table.add_row t [ "total wall"; Printf.sprintf "%.2f" total; "100.0" ];
  Table.print ~title:"wall-clock profile (compare with the E1 model breakdown)" t;
  let c = sim.Simulation.perf in
  Printf.printf "\nthroughput: %.2f Mparticle-steps/s, %.0f Mflop/s (analytic count)\n"
    (c.Perf.particle_steps /. wall /. 1e6)
    (c.Perf.flops /. wall /. 1e6)
