(* Weak scaling, two ways (experiment E2):

   1. Measured: the same per-rank workload run on 1, 2 and 4 local ranks
      (OCaml domains standing in for MPI ranks), reporting wall-clock time
      per step and parallel efficiency of this implementation.
   2. Modelled: the Roadrunner performance model extrapolated from 1 to 17
      connected units with the paper's per-node workload, reproducing the
      near-linear Pflop/s scaling the paper demonstrates.

     dune exec examples/weak_scaling.exe
*)

module Grid = Vpic_grid.Grid
module Bc = Vpic_grid.Bc
module Decomp = Vpic_grid.Decomp
module Comm = Vpic_parallel.Comm
module Simulation = Vpic.Simulation
module Coupler = Vpic.Coupler
module Loader = Vpic_particle.Loader
module Rng = Vpic_util.Rng
module Table = Vpic_util.Table
module Perf_model = Vpic_cell.Perf_model

let steps = 40
let cells_per_rank = 8 (* along x *)
let ppc = 48

let run_ranks ranks =
  let gnx = cells_per_rank * ranks in
  let d =
    Decomp.make ~px:ranks ~py:1 ~pz:1 ~gnx ~gny:4 ~gnz:4
      ~lx:(0.5 *. float_of_int gnx) ~ly:2. ~lz:2.
  in
  let dt = Grid.courant_dt ~dx:0.5 ~dy:0.5 ~dz:0.5 () in
  let (), elapsed =
    Vpic_util.Perf.timed (fun () ->
        ignore
          (Comm.run ~ranks (fun c ->
               let rank = Comm.rank c in
               let grid = Decomp.local_grid d ~dt ~rank in
               let bc = Decomp.local_bc d ~global:Bc.periodic ~rank in
               let sim =
                 Simulation.make ~grid ~coupler:(Coupler.parallel c bc ~grid) ()
               in
               let e =
                 Simulation.add_species sim ~name:"electron" ~q:(-1.) ~m:1.
               in
               ignore
                 (Loader.maxwellian (Rng.of_int (7 + rank)) e ~ppc ~uth:0.08 ());
               Simulation.run sim ~steps ())))
  in
  elapsed /. float_of_int steps

let () =
  print_endline "== measured: local domains, fixed work per rank ==";
  let t1 = run_ranks 1 in
  let table = Table.create [ "ranks"; "s/step"; "efficiency" ] in
  List.iter
    (fun ranks ->
      let t = if ranks = 1 then t1 else run_ranks ranks in
      Table.add_row table
        [ Table.cell_i ranks;
          Printf.sprintf "%.4f" t;
          Printf.sprintf "%.2f" (t1 /. t) ])
    [ 1; 2; 4 ];
  Table.print
    ~title:
      "local weak scaling (upper-bounded by the host's effective cores and \
       the OCaml stop-the-world minor GC; the Roadrunner model below is \
       the paper's E2 reproduction)"
    table;

  print_endline "\n== modelled: VPIC on Roadrunner, paper workload per node ==";
  let rows = Perf_model.weak_scaling [ 1; 2; 4; 8; 12; 17 ] in
  let table = Table.create [ "CUs"; "nodes"; "Pflop/s sustained"; "Pflop/s inner"; "s/step" ] in
  List.iter
    (fun (cu, nodes, b) ->
      Table.add_row table
        [ Table.cell_i cu;
          Table.cell_i nodes;
          Printf.sprintf "%.4f" (b.Perf_model.sustained_flops /. 1e15);
          Printf.sprintf "%.4f" (b.Perf_model.inner_flops /. 1e15);
          Printf.sprintf "%.3f" b.Perf_model.t_step ])
    rows;
  Table.print ~title:"Roadrunner weak scaling (paper: 0.374 Pflop/s at 17 CUs)"
    table
